// Package netproto holds the allocation-free building blocks of the altdb
// wire protocol: an in-place byte-slice tokenizer, ASCII case-insensitive
// command matching, and uint64 parsing over raw bytes. The server's
// pipelined dispatcher and the TCP load generator share these so neither
// side allocates per command on the hot path.
//
// The protocol itself is line-oriented: one command per '\n'-terminated
// line, fields separated by runs of spaces/tabs, replies single lines
// (or END-terminated blocks). These helpers never retain or mutate their
// inputs; returned sub-slices alias the input line.
//
// The Append* reply formatters are the write-side counterparts: they build
// protocol reply lines directly into the caller's (pooled) buffer with
// strconv-style appends, replacing fmt on the server's streaming paths.
package netproto

import "strconv"

// AppendPair appends a SCAN result line: "PAIR <key> <value>\n".
func AppendPair(dst []byte, key, value uint64) []byte {
	dst = append(dst, "PAIR "...)
	dst = strconv.AppendUint(dst, key, 10)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, value, 10)
	return append(dst, '\n')
}

// AppendErr appends a structured error reply: "ERR <code> <msg>\n".
func AppendErr(dst []byte, code, msg string) []byte {
	dst = append(dst, "ERR "...)
	dst = append(dst, code...)
	dst = append(dst, ' ')
	dst = append(dst, msg...)
	return append(dst, '\n')
}

// AppendErrToken appends an error reply that echoes one offending token,
// Go-quoted like fmt's %q so binary junk stays printable:
// "ERR <code>[ pre] <quoted tok>[ post]\n". Empty pre/post are omitted
// along with their separating space.
func AppendErrToken(dst []byte, code, pre string, tok []byte, post string) []byte {
	dst = append(dst, "ERR "...)
	dst = append(dst, code...)
	if pre != "" {
		dst = append(dst, ' ')
		dst = append(dst, pre...)
	}
	dst = append(dst, ' ')
	dst = strconv.AppendQuote(dst, string(tok))
	if post != "" {
		dst = append(dst, ' ')
		dst = append(dst, post...)
	}
	return append(dst, '\n')
}

// AppendErrLimit appends a size-cap error reply:
// "ERR <code> <n> <noun>, max <max> per <cmd>\n".
func AppendErrLimit(dst []byte, code string, n int, noun string, max int, cmd string) []byte {
	dst = append(dst, "ERR "...)
	dst = append(dst, code...)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(n), 10)
	dst = append(dst, ' ')
	dst = append(dst, noun...)
	dst = append(dst, ", max "...)
	dst = strconv.AppendInt(dst, int64(max), 10)
	dst = append(dst, " per "...)
	dst = append(dst, cmd...)
	return append(dst, '\n')
}

// Fields splits line into whitespace-separated fields, appending the
// sub-slices to dst (pass dst[:0] of a reused scratch to stay
// allocation-free). Separators are runs of spaces and tabs; a trailing
// '\r' (CRLF clients) is stripped from the line first. The returned
// fields alias line.
func Fields(dst [][]byte, line []byte) [][]byte {
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	i, n := 0, len(line)
	for i < n {
		for i < n && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i == n {
			break
		}
		start := i
		for i < n && line[i] != ' ' && line[i] != '\t' {
			i++
		}
		dst = append(dst, line[start:i])
	}
	return dst
}

// EqFold reports whether tok equals upper under ASCII case folding.
// upper must be an all-uppercase literal ("GET", "MPUT", ...); only
// ASCII letters fold, so binary junk never aliases a command name.
func EqFold(tok []byte, upper string) bool {
	if len(tok) != len(upper) {
		return false
	}
	for i := 0; i < len(upper); i++ {
		c := tok[i]
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c != upper[i] {
			return false
		}
	}
	return true
}

// ParseUint parses tok as a decimal uint64, rejecting empty tokens,
// non-digits, and overflow — the allocation-free strconv.ParseUint of
// the hot path.
func ParseUint(tok []byte) (uint64, bool) {
	if len(tok) == 0 || len(tok) > 20 {
		return 0, false
	}
	var v uint64
	for _, c := range tok {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if v > (^uint64(0)-d)/10 {
			return 0, false
		}
		v = v*10 + d
	}
	return v, true
}
