package failpoint

import "testing"

// BenchmarkInjectDisabled measures the cost the framework adds to a hot
// protocol edge when the site is disarmed — the acceptance bar is a single
// atomic load (sub-nanosecond next to a slot CAS).
func BenchmarkInjectDisabled(b *testing.B) {
	s := New("bench/disabled")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Inject()
	}
}

// BenchmarkInjectErrDisabled is the persistence-path variant.
func BenchmarkInjectErrDisabled(b *testing.B) {
	s := New("bench/disabled-err")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.InjectErr(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInjectArmedOff measures the armed-but-inert slow path (an "off"
// program), the cost a chaos run pays on sites it armed with countdown
// prefixes.
func BenchmarkInjectArmedOff(b *testing.B) {
	s := New("bench/armed-off")
	if err := Enable("bench/armed-off", "off"); err != nil {
		b.Fatal(err)
	}
	defer Disable("bench/armed-off")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Inject()
	}
}
