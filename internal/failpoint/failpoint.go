// Package failpoint is a deterministic fault-injection framework for the
// concurrency protocol and persistence paths of this repository. Named
// sites are compiled into production code permanently; a disabled site
// costs exactly one atomic pointer load and a predicted branch, so the
// framework can stay linked into the hot seqlock/retrain edges without a
// build-tag fork of the protocol code.
//
// A site is armed with a program — a chain of terms evaluated per hit:
//
//	term    := [P%][N*]action[(arg)]
//	program := term { "->" term }
//
// Actions:
//
//	off          do nothing (used as a countdown prefix)
//	yield        runtime.Gosched — simulates a descheduled writer
//	delay(d)     time.Sleep(d), d a Go duration — stretches a critical
//	             section or freeze window
//	panic        panic("failpoint: <site>") — simulates a handler crash
//	error        InjectErr returns ErrInjected — simulates an I/O or
//	             protocol failure (Inject ignores it)
//	error(msg)   as error, with msg wrapped in the returned error
//	kill         raises SIGKILL on the calling process — a real kill -9,
//	             not a simulated one. Terminal by construction: the
//	             external crash-matrix harness arms it in a child process
//	             to die at an exact log/checkpoint edge, then restarts the
//	             child and audits recovery. Never arm it in-process.
//
// A trailing N* count makes a term fire N hits then advance to the next
// term; the final term, if it carries no count, repeats forever. When the
// program exhausts, the site disarms itself back to the zero-cost path. A
// P% prefix makes a hit fire the term only with probability P (deterministic
// per-site PRNG), without consuming the term's count on the misses.
//
// Examples:
//
//	Enable("core/retrain/freeze", "delay(200us)")   // every freeze stalls
//	Enable("memdb/save/rows", "2*off->error(crash)") // 3rd hit fails
//	Enable("core/insert/locked", "5%yield")          // 5% of inserts yield
//
// Enable, Disable and Inject are all safe for concurrent use.
package failpoint

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"altindex/internal/xrand"
)

// ErrInjected is the base error returned by an armed error action. Specs
// with a message return an error wrapping ErrInjected.
var ErrInjected = errors.New("failpoint: injected error")

// Site is one named injection point. Create with New at package init; the
// zero-value method set is safe but a Site must be registered through New
// for Enable to find it.
type Site struct {
	name string
	prog atomic.Pointer[program]
	hits atomic.Int64 // counted only while armed (the disabled path is free)
}

type action uint8

const (
	actOff action = iota
	actYield
	actDelay
	actPanic
	actError
	actKill
)

type term struct {
	act     action
	count   int64 // hits this term covers; 0 on the final term = forever
	percent int   // 0 = always; otherwise fire with this probability
	delay   time.Duration
	err     error
}

// program is a Site's armed state. Terms advance under mu; the pointer in
// Site.prog is swapped to nil once the program exhausts.
type program struct {
	mu    sync.Mutex
	terms []term
	ti    int
	fired int64 // hits consumed from the current term
	rng   *xrand.Rng
}

var registry = struct {
	sync.Mutex
	sites map[string]*Site
}{sites: map[string]*Site{}}

// New registers and returns the site for name. Calling New twice with the
// same name returns the same Site, so tests and production code can both
// reference a site by declaring it.
func New(name string) *Site {
	registry.Lock()
	defer registry.Unlock()
	if s, ok := registry.sites[name]; ok {
		return s
	}
	s := &Site{name: name}
	registry.sites[name] = s
	return s
}

// Names returns every registered site name, sorted — the failpoint catalog.
func Names() []string {
	registry.Lock()
	out := make([]string, 0, len(registry.sites))
	for n := range registry.sites {
		out = append(out, n)
	}
	registry.Unlock()
	sort.Strings(out)
	return out
}

// Enable arms the named site with spec. The site must have been registered
// (typo protection); the spec must parse.
func Enable(name, spec string) error {
	registry.Lock()
	s, ok := registry.sites[name]
	registry.Unlock()
	if !ok {
		return fmt.Errorf("failpoint: unknown site %q", name)
	}
	terms, err := parseSpec(name, spec)
	if err != nil {
		return err
	}
	p := &program{terms: terms, rng: xrand.New(xrand.HashString(name + "|" + spec))}
	s.prog.Store(p)
	s.hits.Store(0)
	return nil
}

// Disable disarms the named site (a no-op if unknown or already disabled).
func Disable(name string) {
	registry.Lock()
	s, ok := registry.sites[name]
	registry.Unlock()
	if ok {
		s.prog.Store(nil)
	}
}

// DisableAll disarms every registered site.
func DisableAll() {
	registry.Lock()
	sites := make([]*Site, 0, len(registry.sites))
	for _, s := range registry.sites {
		sites = append(sites, s)
	}
	registry.Unlock()
	for _, s := range sites {
		s.prog.Store(nil)
	}
}

// Hits returns how many times the named site fired while armed (0 for
// unknown sites). Used by tests to assert a chaos run actually exercised a
// site.
func Hits(name string) int64 {
	registry.Lock()
	s, ok := registry.sites[name]
	registry.Unlock()
	if !ok {
		return 0
	}
	return s.hits.Load()
}

// Name returns the site's registered name.
func (s *Site) Name() string { return s.name }

// Inject evaluates the site, ignoring an error action's result. This is
// the hook for protocol edges that cannot propagate errors (slot writes,
// freezes, buffer hops): disabled cost is one atomic load.
func (s *Site) Inject() {
	if p := s.prog.Load(); p != nil {
		_ = s.eval(p)
	}
}

// InjectErr evaluates the site and returns the injected error, if the
// current term is an error action. This is the hook for persistence paths.
func (s *Site) InjectErr() error {
	if p := s.prog.Load(); p != nil {
		return s.eval(p)
	}
	return nil
}

// eval runs one armed hit. The program lock serializes term advancement;
// the actions themselves (sleep, yield, panic) run outside it so a delayed
// goroutine does not block other hits from advancing the program.
func (s *Site) eval(p *program) error {
	p.mu.Lock()
	if p.ti >= len(p.terms) {
		p.mu.Unlock()
		s.prog.CompareAndSwap(p, nil) // exhausted; restore the fast path
		return nil
	}
	t := p.terms[p.ti]
	if t.percent > 0 && p.rng.Intn(100) >= t.percent {
		p.mu.Unlock()
		return nil // probabilistic miss; the term's count is not consumed
	}
	if t.count > 0 {
		p.fired++
		if p.fired >= t.count {
			p.ti++
			p.fired = 0
		}
	}
	p.mu.Unlock()

	s.hits.Add(1)
	switch t.act {
	case actYield:
		runtime.Gosched()
	case actDelay:
		time.Sleep(t.delay)
	case actPanic:
		panic("failpoint: " + s.name)
	case actError:
		return t.err
	case actKill:
		killSelf()
	}
	return nil
}

// killSelf delivers SIGKILL to the current process and then parks the
// calling goroutine: SIGKILL cannot be caught, so the process is gone the
// instant the kernel schedules the delivery, and nothing after the site
// (an fsync, an ack, a rename) can run first — exactly the crash the
// recovery audit needs to be placed before.
func killSelf() {
	p, err := os.FindProcess(os.Getpid())
	if err == nil {
		_ = p.Kill()
	}
	select {}
}

// parseSpec compiles "term->term->..." into a term list.
func parseSpec(site, spec string) ([]term, error) {
	parts := strings.Split(spec, "->")
	terms := make([]term, 0, len(parts))
	for i, raw := range parts {
		t, err := parseTerm(site, strings.TrimSpace(raw))
		if err != nil {
			return nil, err
		}
		// A non-final term with no explicit count fires once; a final
		// term with no count repeats forever (count 0).
		if t.count == 0 && i != len(parts)-1 {
			t.count = 1
		}
		terms = append(terms, t)
	}
	return terms, nil
}

func parseTerm(site, s string) (term, error) {
	var t term
	if s == "" {
		return t, fmt.Errorf("failpoint: empty term in spec for %q", site)
	}
	if i := strings.IndexByte(s, '%'); i >= 0 {
		p, err := strconv.Atoi(s[:i])
		if err != nil || p < 1 || p > 100 {
			return t, fmt.Errorf("failpoint: bad probability %q for %q", s[:i], site)
		}
		t.percent = p
		s = s[i+1:]
	}
	if i := strings.IndexByte(s, '*'); i >= 0 {
		n, err := strconv.ParseInt(s[:i], 10, 64)
		if err != nil || n < 1 {
			return t, fmt.Errorf("failpoint: bad count %q for %q", s[:i], site)
		}
		t.count = n
		s = s[i+1:]
	}
	arg := ""
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return t, fmt.Errorf("failpoint: unclosed argument in %q for %q", s, site)
		}
		arg = s[i+1 : len(s)-1]
		s = s[:i]
	}
	switch s {
	case "off", "yield", "panic", "kill":
		if arg != "" {
			return t, fmt.Errorf("failpoint: action %q takes no argument (got %q) for %q", s, arg, site)
		}
		switch s {
		case "off":
			t.act = actOff
		case "yield":
			t.act = actYield
		case "panic":
			t.act = actPanic
		case "kill":
			t.act = actKill
		}
	case "delay", "sleep":
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return t, fmt.Errorf("failpoint: bad delay %q for %q", arg, site)
		}
		t.act = actDelay
		t.delay = d
	case "error":
		t.act = actError
		if arg == "" {
			t.err = ErrInjected
		} else {
			t.err = fmt.Errorf("%w: %s (site %s)", ErrInjected, arg, site)
		}
	default:
		return t, fmt.Errorf("failpoint: unknown action %q for %q", s, site)
	}
	return t, nil
}
