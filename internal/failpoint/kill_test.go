//go:build failpoint

package failpoint_test

import (
	"os"
	"os/exec"
	"syscall"
	"testing"

	"altindex/internal/failpoint"
)

// TestKillSpecParses covers the spec grammar side of the kill action: it
// must parse standalone, with a countdown prefix, and chained — without
// ever being evaluated in-process (evaluating it would kill the test run).
func TestKillSpecParses(t *testing.T) {
	defer failpoint.DisableAll()
	failpoint.New("test/kill/parse")
	for _, spec := range []string{"kill", "3*off->kill", "2*yield->kill", "50%kill"} {
		if err := failpoint.Enable("test/kill/parse", spec); err != nil {
			t.Fatalf("spec %q rejected: %v", spec, err)
		}
		failpoint.Disable("test/kill/parse")
	}
	if err := failpoint.Enable("test/kill/parse", "kill(now)"); err == nil {
		t.Fatal("kill with an argument parsed; the action takes none")
	}
}

// TestKillActionTerminatesProcess is the negative self-test for the kill
// action: a child process that hits an armed kill site must die from
// SIGKILL — not exit cleanly, not run the code after the site. The child
// is this same test binary re-executed with an env marker.
func TestKillActionTerminatesProcess(t *testing.T) {
	if os.Getenv("FAILPOINT_KILL_CHILD") == "1" {
		s := failpoint.New("test/kill/child")
		if err := failpoint.Enable("test/kill/child", "1*off->kill"); err != nil {
			os.Exit(3)
		}
		s.Inject() // first hit: off
		s.Inject() // second hit: SIGKILL — nothing below may run
		os.Exit(0)
	}

	cmd := exec.Command(os.Args[0], "-test.run", "TestKillActionTerminatesProcess$")
	cmd.Env = append(os.Environ(), "FAILPOINT_KILL_CHILD=1")
	err := cmd.Run()
	if err == nil {
		t.Fatal("child with an armed kill site exited cleanly")
	}
	ws, ok := cmd.ProcessState.Sys().(syscall.WaitStatus)
	if !ok {
		t.Fatalf("no wait status for child: %v", err)
	}
	if !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("child died with %v, want SIGKILL", err)
	}
}
