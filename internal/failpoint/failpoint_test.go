package failpoint

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisabledIsInert(t *testing.T) {
	s := New("test/inert")
	for i := 0; i < 1000; i++ {
		s.Inject()
		if err := s.InjectErr(); err != nil {
			t.Fatalf("disabled site returned %v", err)
		}
	}
	if Hits("test/inert") != 0 {
		t.Fatalf("disabled site counted hits")
	}
}

func TestEnableUnknownSite(t *testing.T) {
	if err := Enable("test/never-registered", "off"); err == nil {
		t.Fatal("enabling an unregistered site succeeded")
	}
}

func TestErrorAction(t *testing.T) {
	s := New("test/error")
	defer Disable("test/error")
	if err := Enable("test/error", "error(disk gone)"); err != nil {
		t.Fatal(err)
	}
	err := s.InjectErr()
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "disk gone") {
		t.Fatalf("err = %v, want message", err)
	}
	// A final term with no count repeats forever.
	for i := 0; i < 10; i++ {
		if err := s.InjectErr(); !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: err = %v", i, err)
		}
	}
	// Inject swallows the error but still fires.
	before := Hits("test/error")
	s.Inject()
	if Hits("test/error") != before+1 {
		t.Fatal("Inject did not fire the error term")
	}
}

func TestCountdownChain(t *testing.T) {
	s := New("test/countdown")
	defer Disable("test/countdown")
	// Hits 1-3 off, hit 4 errors, then the program exhausts and the site
	// disarms itself.
	if err := Enable("test/countdown", "3*off->1*error"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.InjectErr(); err != nil {
			t.Fatalf("countdown hit %d fired early: %v", i, err)
		}
	}
	if err := s.InjectErr(); !errors.Is(err, ErrInjected) {
		t.Fatalf("4th hit: err = %v, want injected", err)
	}
	for i := 0; i < 5; i++ {
		if err := s.InjectErr(); err != nil {
			t.Fatalf("post-exhaustion hit fired: %v", err)
		}
	}
	if s.prog.Load() != nil {
		t.Fatal("exhausted program did not disarm the site")
	}
}

func TestDelayAction(t *testing.T) {
	s := New("test/delay")
	defer Disable("test/delay")
	if err := Enable("test/delay", "delay(20ms)"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	s.Inject()
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay action slept %v, want >= ~20ms", d)
	}
}

func TestPanicAction(t *testing.T) {
	s := New("test/panic")
	defer Disable("test/panic")
	if err := Enable("test/panic", "panic"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic action did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "test/panic") {
			t.Fatalf("panic value %v does not name the site", r)
		}
	}()
	s.Inject()
}

func TestProbabilisticTerm(t *testing.T) {
	s := New("test/prob")
	defer Disable("test/prob")
	if err := Enable("test/prob", "30%error"); err != nil {
		t.Fatal(err)
	}
	fired := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if s.InjectErr() != nil {
			fired++
		}
	}
	if fired < n/5 || fired > n/2 {
		t.Fatalf("30%% term fired %d/%d times", fired, n)
	}
}

func TestProbabilityDoesNotConsumeCount(t *testing.T) {
	s := New("test/probcount")
	defer Disable("test/probcount")
	// One 50% error that must eventually fire exactly once.
	if err := Enable("test/probcount", "50%1*error"); err != nil {
		t.Fatal(err)
	}
	fired := 0
	for i := 0; i < 200; i++ {
		if s.InjectErr() != nil {
			fired++
		}
	}
	if fired != 1 {
		t.Fatalf("50%%1*error fired %d times, want exactly 1", fired)
	}
}

func TestSpecErrors(t *testing.T) {
	New("test/spec")
	for _, spec := range []string{
		"", "bogus", "delay", "delay(xyz)", "-1*off", "0*off",
		"200%off", "off->", "delay(1ms", "panic(arg",
	} {
		if err := Enable("test/spec", spec); err == nil {
			t.Errorf("spec %q parsed", spec)
		}
	}
}

func TestReEnableResetsProgram(t *testing.T) {
	s := New("test/reenable")
	defer Disable("test/reenable")
	if err := Enable("test/reenable", "1*error"); err != nil {
		t.Fatal(err)
	}
	if s.InjectErr() == nil {
		t.Fatal("first program did not fire")
	}
	if err := Enable("test/reenable", "1*error"); err != nil {
		t.Fatal(err)
	}
	if s.InjectErr() == nil {
		t.Fatal("re-enabled program did not fire")
	}
	if Hits("test/reenable") != 1 {
		t.Fatalf("hits = %d, want 1 (reset on Enable)", Hits("test/reenable"))
	}
}

func TestConcurrentEnableDisableInject(t *testing.T) {
	s := New("test/race")
	defer Disable("test/race")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Inject()
				_ = s.InjectErr()
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if err := Enable("test/race", "10*yield->error"); err != nil {
			t.Error(err)
			break
		}
		Disable("test/race")
	}
	close(stop)
	wg.Wait()
}

func TestNamesCatalog(t *testing.T) {
	New("test/catalog")
	names := Names()
	found := false
	for i, n := range names {
		if n == "test/catalog" {
			found = true
		}
		if i > 0 && names[i-1] > n {
			t.Fatal("Names not sorted")
		}
	}
	if !found {
		t.Fatal("registered site missing from catalog")
	}
}
