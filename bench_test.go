// Benchmarks regenerating every table and figure of the ALT-index paper's
// evaluation, one Benchmark per table/figure. Each benchmark drives b.N
// operations (or b.N builds, for the construction-time figures) against a
// scenario prepared outside the timed region; throughput figures add a
// "Mops" metric. The full parameter sweeps with printed tables live in
// cmd/altbench (e.g. `go run ./cmd/altbench -exp fig7c`).
//
// Run with:
//
//	go test -bench=. -benchmem -benchtime=100000x
//
// A fixed iteration count is recommended: it keeps each throughput bench
// inside its prepared fresh-key pool. With large time-based budgets b.N can
// exceed the pool, after which streams synthesise keys beyond the loaded
// range — a hostile append-beyond-range regime (interesting, and exactly
// where ALEX+-style shifting collapses, but not what the paper's figures
// measure).
package altindex_test

import (
	"testing"

	"altindex/internal/bench"
	"altindex/internal/core"
	"altindex/internal/dataset"
	"altindex/internal/gpl"
	"altindex/internal/index"
	"altindex/internal/workload"
)

const benchKeys = 200_000

// benchMix drives b.N mixed operations for every index on one dataset.
func benchMix(b *testing.B, ds dataset.Name, mix workload.Mix, factories []bench.NamedFactory) {
	for _, f := range factories {
		f := f
		b.Run(f.Name, func(b *testing.B) {
			p := bench.Prepare(f.New, bench.Config{Dataset: ds, Keys: benchKeys, Mix: mix})
			defer p.Close()
			b.ResetTimer()
			p.Exec(b.N)
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mops")
		})
	}
}

// benchBuild measures one full bulkload per iteration.
func benchBuild(b *testing.B, f bench.NamedFactory, ds dataset.Name, keys int) {
	all := dataset.Generate(ds, keys, 1)
	pairs := dataset.Pairs(all)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := f.New()
		if err := ix.Bulkload(pairs); err != nil {
			b.Fatal(err)
		}
		bench.CloseIndex(ix)
	}
	b.ReportMetric(float64(keys)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mkeys/s")
}

// --- Table I ---------------------------------------------------------------

// BenchmarkTable1 reproduces Table I's measurement: the five baselines
// under the balanced workload on osm.
func BenchmarkTable1(b *testing.B) {
	benchMix(b, dataset.OSM, workload.Balanced, bench.Competitors())
}

// --- Fig 3 -----------------------------------------------------------------

// BenchmarkFig3a measures the bulkload that produces each learned index's
// model population (the model counts themselves print via altbench).
func BenchmarkFig3a(b *testing.B) {
	for _, f := range []bench.NamedFactory{bench.XIndexWith(0), bench.FINEdexWith(0), bench.ALT()} {
		f := f
		b.Run(f.Name, func(b *testing.B) { benchBuild(b, f, dataset.OSM, benchKeys) })
	}
}

// BenchmarkFig3b sweeps the error bound of FINEdex and XIndex, read-only.
func BenchmarkFig3b(b *testing.B) {
	for _, eb := range []int{32, 256} {
		for _, f := range []bench.NamedFactory{bench.FINEdexWith(eb), bench.XIndexWith(eb)} {
			f := f
			b.Run(f.Name+"/eb="+itoa(eb), func(b *testing.B) {
				p := bench.Prepare(f.New, bench.Config{Dataset: dataset.OSM, Keys: benchKeys, Mix: workload.ReadOnly})
				defer p.Close()
				b.ResetTimer()
				p.Exec(b.N)
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mops")
			})
		}
	}
}

// --- Fig 4 -----------------------------------------------------------------

// BenchmarkFig4 times the three segmentation algorithms over the same data.
func BenchmarkFig4(b *testing.B) {
	keys := dataset.Generate(dataset.OSM, benchKeys, 1)
	eps := float64(benchKeys) / 1000
	for _, algo := range []struct {
		name string
		run  func([]uint64, float64) []gpl.Segment
	}{
		{"GPL", gpl.Partition},
		{"ShrinkingCone", gpl.ShrinkingCone},
		{"LPA", gpl.LPA},
	} {
		algo := algo
		b.Run(algo.name, func(b *testing.B) {
			var segs int
			for i := 0; i < b.N; i++ {
				segs = len(algo.run(keys, eps))
			}
			b.ReportMetric(float64(segs), "segments")
		})
	}
}

// --- Fig 6 -----------------------------------------------------------------

// BenchmarkFig6a measures GPL partitioning across the error-bound sweep.
func BenchmarkFig6a(b *testing.B) {
	keys := dataset.Generate(dataset.OSM, benchKeys, 1)
	for _, eb := range []int{16, 64, 200, 800, 3200} {
		eb := eb
		b.Run("eps="+itoa(eb), func(b *testing.B) {
			var segs int
			for i := 0; i < b.N; i++ {
				segs = len(gpl.Partition(keys, float64(eb)))
			}
			b.ReportMetric(float64(segs), "models")
		})
	}
}

// BenchmarkFig6b sweeps ALT's error bound under read-only load.
func BenchmarkFig6b(b *testing.B) {
	for _, eb := range []int{16, 64, 200, 800, 3200} {
		eb := eb
		b.Run("eps="+itoa(eb), func(b *testing.B) {
			f := bench.ALTWith("ALT-index", core.Options{ErrorBound: eb})
			p := bench.Prepare(f.New, bench.Config{Dataset: dataset.OSM, Keys: benchKeys, Mix: workload.ReadOnly})
			defer p.Close()
			b.ResetTimer()
			p.Exec(b.N)
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mops")
		})
	}
}

// --- Fig 7 -----------------------------------------------------------------

// BenchmarkFig7a..e: the five workload mixes over all six indexes (osm).
func BenchmarkFig7aReadOnly(b *testing.B) {
	benchMix(b, dataset.OSM, workload.ReadOnly, bench.All())
}
func BenchmarkFig7bReadHeavy(b *testing.B) {
	benchMix(b, dataset.OSM, workload.ReadHeavy, bench.All())
}
func BenchmarkFig7cBalanced(b *testing.B) {
	benchMix(b, dataset.OSM, workload.Balanced, bench.All())
}
func BenchmarkFig7dWriteHeavy(b *testing.B) {
	benchMix(b, dataset.OSM, workload.WriteHeavy, bench.All())
}
func BenchmarkFig7eWriteOnly(b *testing.B) {
	benchMix(b, dataset.OSM, workload.WriteOnly, bench.All())
}

// --- Fig 8 -----------------------------------------------------------------

// BenchmarkFig8aMemory inserts the dataset remainder and reports bytes/key.
func BenchmarkFig8aMemory(b *testing.B) {
	for _, f := range bench.All() {
		f := f
		b.Run(f.Name, func(b *testing.B) {
			p := bench.Prepare(f.New, bench.Config{Dataset: dataset.OSM, Keys: benchKeys, Mix: workload.WriteOnly})
			defer p.Close()
			b.ResetTimer()
			p.Exec(b.N)
			b.StopTimer()
			if n := p.Ix.Len(); n > 0 {
				b.ReportMetric(float64(p.Ix.MemoryUsage())/float64(n), "bytes/key")
			}
		})
	}
}

// BenchmarkFig8bHotWrite drives consecutive-range inserts (the retraining
// trigger) for every index.
func BenchmarkFig8bHotWrite(b *testing.B) {
	for _, f := range bench.All() {
		f := f
		b.Run(f.Name, func(b *testing.B) {
			p := bench.Prepare(f.New, bench.Config{Dataset: dataset.Libio, Keys: benchKeys,
				Mix: workload.WriteOnly, Hot: true})
			defer p.Close()
			b.ResetTimer()
			p.Exec(b.N)
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mops")
		})
	}
}

// BenchmarkFig8cScan drives 100-key range scans for every index.
func BenchmarkFig8cScan(b *testing.B) {
	benchMix(b, dataset.OSM, workload.ScanOnly, bench.All())
}

// BenchmarkFig8dInitRatio sweeps the bulkload ratio (osm, read-only, ALT).
func BenchmarkFig8dInitRatio(b *testing.B) {
	for _, ratio := range []float64{0.2, 0.6, 1.0} {
		ratio := ratio
		b.Run("init="+ftoa(ratio), func(b *testing.B) {
			p := bench.Prepare(bench.ALT().New, bench.Config{Dataset: dataset.OSM,
				Keys: benchKeys, InitRatio: ratio, Mix: workload.ReadOnly})
			defer p.Close()
			b.ResetTimer()
			p.Exec(b.N)
		})
	}
}

// BenchmarkFig8eSkew sweeps the zipfian theta (osm, read-only, ALT).
func BenchmarkFig8eSkew(b *testing.B) {
	for _, theta := range []float64{0.5, 0.99, 1.3} {
		theta := theta
		b.Run("theta="+ftoa(theta), func(b *testing.B) {
			p := bench.Prepare(bench.ALT().New, bench.Config{Dataset: dataset.OSM,
				Keys: benchKeys, Mix: workload.ReadOnly, Theta: theta})
			defer p.Close()
			b.ResetTimer()
			p.Exec(b.N)
		})
	}
}

// --- Fig 9 -----------------------------------------------------------------

// BenchmarkFig9Scalability sweeps the thread count, balanced workload.
func BenchmarkFig9Scalability(b *testing.B) {
	for _, th := range []int{1, 2, 4, 8, 16, 32} {
		th := th
		b.Run("threads="+itoa(th), func(b *testing.B) {
			p := bench.Prepare(bench.ALT().New, bench.Config{Dataset: dataset.OSM,
				Keys: benchKeys, Mix: workload.Balanced, Threads: th})
			defer p.Close()
			b.ResetTimer()
			p.Exec(b.N)
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mops")
		})
	}
}

// --- Fig 10 ----------------------------------------------------------------

// fig10ALT builds an ALT over the whole benchmark dataset and returns it
// with its conflict keys.
func fig10ALT(b *testing.B, opts core.Options) (*core.ALT, []uint64) {
	b.Helper()
	keys := dataset.Generate(dataset.OSM, benchKeys, 1)
	alt := core.New(opts)
	if err := alt.Bulkload(dataset.Pairs(keys)); err != nil {
		b.Fatal(err)
	}
	var conflicts []uint64
	for i := 0; i < len(keys); i += 3 {
		if _, in := alt.ARTLookupLength(keys[i], true); in {
			conflicts = append(conflicts, keys[i])
		}
	}
	if len(conflicts) == 0 {
		b.Skip("no ART residents in this configuration")
	}
	return alt, conflicts
}

// BenchmarkFig10aLookupLength measures secondary lookups into ART with and
// without fast pointers.
func BenchmarkFig10aLookupLength(b *testing.B) {
	for _, useFP := range []bool{true, false} {
		useFP := useFP
		name := "withFP"
		if !useFP {
			name = "withoutFP"
		}
		b.Run(name, func(b *testing.B) {
			alt, conflicts := fig10ALT(b, core.Options{})
			var nodes int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l, _ := alt.ARTLookupLength(conflicts[i%len(conflicts)], useFP)
				nodes += l
			}
			b.ReportMetric(float64(nodes)/float64(b.N), "nodes/lookup")
		})
	}
}

// BenchmarkFig10bMerge builds ALT and reports the fast-pointer merge saving.
func BenchmarkFig10bMerge(b *testing.B) {
	var req, ent int64
	keys := dataset.Generate(dataset.OSM, benchKeys, 1)
	pairs := dataset.Pairs(keys)
	for i := 0; i < b.N; i++ {
		alt := core.New(core.Options{})
		if err := alt.Bulkload(pairs); err != nil {
			b.Fatal(err)
		}
		st := alt.StatsMap()
		req, ent = st["fp_requested"], st["fp_entries"]
	}
	b.ReportMetric(float64(req), "registered")
	b.ReportMetric(float64(ent), "stored")
}

// BenchmarkFig10cSplit builds ALT and reports the layer split.
func BenchmarkFig10cSplit(b *testing.B) {
	var learned, art int64
	keys := dataset.Generate(dataset.OSM, benchKeys, 1)
	pairs := dataset.Pairs(keys)
	for i := 0; i < b.N; i++ {
		alt := core.New(core.Options{})
		if err := alt.Bulkload(pairs); err != nil {
			b.Fatal(err)
		}
		st := alt.StatsMap()
		learned, art = st["learned_keys"], st["art_keys"]
	}
	b.ReportMetric(100*float64(learned)/float64(learned+art), "learned%")
}

// BenchmarkFig10dBulkload times full bulkloads of ALT, ALEX+ and LIPP+.
func BenchmarkFig10dBulkload(b *testing.B) {
	facts := []bench.NamedFactory{bench.ALT()}
	for _, f := range bench.Competitors() {
		if f.Name == "ALEX+" || f.Name == "LIPP+" {
			facts = append(facts, f)
		}
	}
	for _, f := range facts {
		f := f
		b.Run(f.Name, func(b *testing.B) { benchBuild(b, f, dataset.OSM, benchKeys) })
	}
}

// --- batched operations ------------------------------------------------------

// batchStream bulkloads ALT over the full osm dataset and pregenerates a
// zipfian read-key stream (the YCSB-style locality batching exploits).
func batchStream(b *testing.B) (*core.ALT, []uint64) {
	b.Helper()
	keys := dataset.Generate(dataset.OSM, benchKeys, 1)
	alt := core.New(core.Options{})
	if err := alt.Bulkload(dataset.Pairs(keys)); err != nil {
		b.Fatal(err)
	}
	w := workload.New(workload.Config{Mix: workload.ReadOnly, Threads: 1, Seed: 2}, keys, nil)
	s := w.Stream(0)
	stream := make([]uint64, 1<<20)
	for i := range stream {
		stream[i] = s.Next().Key
	}
	return alt, stream
}

// BenchmarkALTGetBatch compares ALT's native model-grouped GetBatch against
// the per-key loop fallback on the same zipfian stream, across batch sizes.
func BenchmarkALTGetBatch(b *testing.B) {
	alt, stream := batchStream(b)
	for _, bs := range []int{8, 64, 256} {
		bs := bs
		for _, variant := range []struct {
			name string
			bt   index.Batcher
		}{{"native", index.BatchOf(alt)}, {"loop", index.LoopBatcher(alt)}} {
			variant := variant
			b.Run(variant.name+"/B="+itoa(bs), func(b *testing.B) {
				vals := make([]uint64, bs)
				found := make([]bool, bs)
				b.ReportAllocs()
				b.ResetTimer()
				off := 0
				for done := 0; done < b.N; done += bs {
					if off+bs > len(stream) {
						off = 0
					}
					variant.bt.GetBatch(stream[off:off+bs], vals, found)
					off += bs
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mops")
			})
		}
	}
}

// BenchmarkALTInsertBatch compares native InsertBatch against the loop
// fallback: bulkload a quarter of the dataset, insert the rest in batches
// (wrapping into upserts once the fresh-key pool is exhausted).
func BenchmarkALTInsertBatch(b *testing.B) {
	keys := dataset.Generate(dataset.OSM, 4*benchKeys, 1)
	loaded, pending := workload.SplitLoad(keys, 0.25, 3)
	pairs := make([]index.KV, len(pending))
	for i, k := range pending {
		pairs[i] = index.KV{Key: k, Value: dataset.ValueFor(k)}
	}
	for _, bs := range []int{8, 64, 256} {
		bs := bs
		for _, loop := range []bool{false, true} {
			loop := loop
			name := "native"
			if loop {
				name = "loop"
			}
			b.Run(name+"/B="+itoa(bs), func(b *testing.B) {
				alt := core.New(core.Options{})
				if err := alt.Bulkload(dataset.Pairs(loaded)); err != nil {
					b.Fatal(err)
				}
				bt := index.Batcher(alt)
				if loop {
					bt = index.LoopBatcher(alt)
				}
				b.ReportAllocs()
				b.ResetTimer()
				off := 0
				for done := 0; done < b.N; done += bs {
					if off+bs > len(pairs) {
						off = 0
					}
					if err := bt.InsertBatch(pairs[off : off+bs]); err != nil {
						b.Fatal(err)
					}
					off += bs
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Mops")
			})
		}
	}
}

// BenchmarkALTScan measures repeated 100-key scans; with the pooled scan
// buffers these run at ~0 allocs/op.
func BenchmarkALTScan(b *testing.B) {
	alt, stream := batchStream(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alt.Scan(stream[i%len(stream)], 100, func(uint64, uint64) bool { return true })
	}
}

// --- ablations ---------------------------------------------------------------

// BenchmarkAblationRetrain contrasts hot-write inserts with retraining
// enabled and disabled.
func BenchmarkAblationRetrain(b *testing.B) {
	variants := []bench.NamedFactory{
		bench.ALTWith("retrain", core.Options{}),
		bench.ALTWith("noretrain", core.Options{DisableRetraining: true}),
	}
	for _, f := range variants {
		f := f
		b.Run(f.Name, func(b *testing.B) {
			p := bench.Prepare(f.New, bench.Config{Dataset: dataset.Libio, Keys: benchKeys,
				Mix: workload.WriteOnly, Hot: true})
			defer p.Close()
			b.ResetTimer()
			p.Exec(b.N)
		})
	}
}

// BenchmarkAblationGap sweeps the learned layer's gap factor, balanced mix.
func BenchmarkAblationGap(b *testing.B) {
	for _, g := range []float64{1.0, 1.5, 3.0} {
		g := g
		b.Run("gap="+ftoa(g), func(b *testing.B) {
			f := bench.ALTWith("ALT-index", core.Options{GapFactor: g})
			p := bench.Prepare(f.New, bench.Config{Dataset: dataset.OSM, Keys: benchKeys,
				Mix: workload.Balanced})
			defer p.Close()
			b.ResetTimer()
			p.Exec(b.N)
		})
	}
}

// --- tiny local formatting helpers ------------------------------------------

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func ftoa(v float64) string {
	whole := int(v)
	frac := int(v*100) % 100
	return itoa(whole) + "." + itoa(frac/10) + itoa(frac%10)
}

// Compile-time check that the public API satisfies the shared interface.
var _ index.Concurrent = (*core.ALT)(nil)
