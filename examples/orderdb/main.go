// orderdb demonstrates ALT-index as a memory database's index layer (the
// paper's target setting) via the memdb substrate: an orders table with a
// time-ordered primary key, a non-unique secondary index on customer, and
// concurrent OLTP traffic (placements, status updates, per-customer
// queries, time-window reports).
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"altindex/internal/memdb"
	"altindex/internal/xrand"
)

// Column layout of the orders table.
const (
	colCustomer = iota
	colAmount
	colStatus
	numCols
)

// Order statuses.
const (
	statusPlaced uint64 = iota
	statusShipped
	statusDelivered
)

// orderID packs a timestamp and a sequence: range scans over the primary
// key are time-window queries.
func orderID(ts uint64, seq uint64) uint64 { return ts<<20 | seq&0xFFFFF }

func main() {
	var (
		customers = flag.Int("customers", 5000, "distinct customers")
		seconds   = flag.Int("span", 1000, "simulated seconds of history")
		workers   = flag.Int("workers", 4, "concurrent clients")
		perWorker = flag.Int("orders", 20000, "orders placed per worker")
	)
	flag.Parse()

	db := memdb.NewDB()
	orders := db.CreateTable("orders", numCols)
	byCustomer, err := orders.CreateIndex("by_customer", colCustomer, 40)
	if err != nil {
		log.Fatal(err)
	}

	// Concurrent OLTP phase.
	var placed, updated, queried atomic.Int64
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := xrand.New(uint64(w) + 1)
			for i := 0; i < *perWorker; i++ {
				ts := r.Uint64n(uint64(*seconds))
				id := orderID(ts, uint64(w**perWorker+i))
				cust := r.Uint64n(uint64(*customers))
				amount := 100 + r.Uint64n(100_000)
				if err := orders.Insert(id, []uint64{cust, amount, statusPlaced}); err != nil {
					log.Fatal(err)
				}
				placed.Add(1)
				switch i % 4 {
				case 0: // ship a random earlier order of this worker
					victim := orderID(r.Uint64n(uint64(*seconds)), uint64(w**perWorker+r.Intn(i+1)))
					if row, err := orders.Get(victim); err == nil {
						row[colStatus] = statusShipped
						if err := orders.Update(victim, row); err == nil {
							updated.Add(1)
						}
					}
				case 1: // customer history lookup
					byCustomer.SelectWhere(cust, 20, func(pk uint64, row []uint64) bool {
						return true
					})
					queried.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	dt := time.Since(t0)
	fmt.Printf("OLTP: %d orders, %d status updates, %d customer queries in %v (%.0f ktx/s)\n",
		placed.Load(), updated.Load(), queried.Load(), dt.Round(time.Millisecond),
		float64(placed.Load()+updated.Load()+queried.Load())/dt.Seconds()/1e3)

	// Report 1: revenue in a time window (primary-key range scan).
	winStart, winEnd := uint64(*seconds/4), uint64(*seconds/2)
	var revenue, count uint64
	orders.SelectRange(orderID(winStart, 0), 1<<30, func(pk uint64, row []uint64) bool {
		if pk >= orderID(winEnd, 0) {
			return false
		}
		revenue += row[colAmount]
		count++
		return true
	})
	fmt.Printf("report: window [%d,%d)s has %d orders, revenue %d\n",
		winStart, winEnd, count, revenue)

	// Report 2: top customer activity via the secondary index.
	busiest, busiestCount := uint64(0), 0
	for c := uint64(0); c < 25; c++ {
		n := byCustomer.SelectWhere(c, 1<<20, func(uint64, []uint64) bool { return true })
		if n > busiestCount {
			busiest, busiestCount = c, n
		}
	}
	fmt.Printf("report: busiest of the first 25 customers is #%d with %d orders\n",
		busiest, busiestCount)

	// Report 3: engine internals — the ALT-index underneath.
	st := orders.Stats()
	fmt.Printf("engine: rows=%d dead=%d | primary: models=%d learned=%d art=%d retrains=%d | %.1f MB\n",
		st["rows"], st["dead_rows"], st["primary_models"],
		st["primary_learned_keys"], st["primary_art_keys"], st["primary_retrains"],
		float64(orders.MemoryUsage())/1e6)
}
