// compare runs a side-by-side mini-benchmark of all six indexes (ALT-index
// and the paper's five baselines) on one dataset and workload — a compact
// version of the paper's Fig 7 for trying the library out.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"altindex/internal/bench"
	"altindex/internal/dataset"
	"altindex/internal/workload"
)

func main() {
	var (
		ds      = flag.String("dataset", "osm", "fb|libio|osm|longlat")
		mixName = flag.String("mix", "balanced", "read-only|read-heavy|balanced|write-heavy|write-only|scan")
		keys    = flag.Int("keys", 1_000_000, "dataset size")
		ops     = flag.Int("ops", 500_000, "operations")
		threads = flag.Int("threads", 0, "goroutines (default GOMAXPROCS, max 32)")
	)
	flag.Parse()

	var mix workload.Mix
	for _, m := range append(workload.Mixes(), workload.ScanOnly) {
		if m.Name == *mixName {
			mix = m
		}
	}
	if mix.Name == "" {
		fmt.Fprintf(os.Stderr, "compare: unknown mix %q\n", *mixName)
		os.Exit(2)
	}

	fmt.Printf("dataset=%s mix=%s keys=%d ops=%d\n", *ds, mix.Name, *keys, *ops)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Index\tMops/s\tP50us\tP99us\tP99.9us\tMem MB\tBuild ms")
	for _, f := range bench.All() {
		r := bench.Run(f.New, bench.Config{
			Dataset: dataset.Name(*ds), Keys: *keys, Mix: mix,
			Threads: *threads, Ops: *ops, Seed: 1,
		})
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.1f\t%.1f\n",
			f.Name, r.Mops,
			float64(r.P50.Nanoseconds())/1e3,
			float64(r.P99.Nanoseconds())/1e3,
			float64(r.P999.Nanoseconds())/1e3,
			float64(r.Mem)/1e6,
			float64(r.BuildTime.Microseconds())/1e3)
	}
	tw.Flush()
}
