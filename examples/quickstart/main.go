// Quickstart: build an ALT-index, look keys up, insert, update, remove and
// range-scan — the 60-second tour of the public API.
package main

import (
	"fmt"
	"log"

	"altindex"
)

func main() {
	// Bulkload expects sorted, deduplicated pairs — here the squares of
	// 1..1000 (a gently non-linear CDF).
	pairs := make([]altindex.KV, 0, 1000)
	for i := uint64(1); i <= 1000; i++ {
		pairs = append(pairs, altindex.KV{Key: i * i, Value: i})
	}

	idx := altindex.New(altindex.Options{})
	if err := idx.Bulkload(pairs); err != nil {
		log.Fatal(err)
	}

	// Point lookups hit the learned layer's exact prediction.
	if v, ok := idx.Get(625); ok {
		fmt.Printf("sqrt(625) = %d\n", v) // 25
	}
	if _, ok := idx.Get(626); !ok {
		fmt.Println("626 is not a square")
	}

	// Inserts land in a free predicted slot, or in the ART layer on
	// conflict — callers never see the difference.
	for i := uint64(1); i <= 1000; i++ {
		if err := idx.Insert(i*i+1, i); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after inserts: %d keys\n", idx.Len())

	// Updates and removals work across both layers too.
	if !idx.Update(626, 2500) {
		log.Fatal("update failed")
	}
	if v, _ := idx.Get(626); v != 2500 {
		log.Fatal("update lost")
	}
	if !idx.Remove(626) {
		log.Fatal("remove failed")
	}

	// Range scans merge the learned layer and the ART layer in key
	// order.
	fmt.Print("first 5 keys >= 620: ")
	idx.Scan(620, 5, func(k, v uint64) bool {
		fmt.Printf("%d ", k)
		return true
	})
	fmt.Println()

	// Internal statistics show how the two layers share the data.
	st := idx.StatsMap()
	fmt.Printf("models=%d learned=%d art=%d fast-pointers=%d\n",
		st["models"], st["learned_keys"], st["art_keys"], st["fp_entries"])
}
