// kvcache demonstrates the workload the paper's introduction motivates: a
// read-mostly concurrent key-value cache with zipfian hot keys (session
// store / object cache pattern). N worker goroutines run an 80/20 read/
// write mix against one shared ALT-index while a reporter prints live
// throughput and layer statistics.
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"altindex"
	"altindex/internal/dataset"
	"altindex/internal/workload"
	"altindex/internal/xrand"
)

func main() {
	var (
		n       = flag.Int("keys", 1_000_000, "cached objects")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent clients")
		dur     = flag.Duration("duration", 3*time.Second, "run time")
		theta   = flag.Float64("theta", 0.99, "zipfian skew of reads")
	)
	flag.Parse()

	// Seed the cache with fb-like object IDs.
	keys := dataset.Generate(dataset.FB, *n, 42)
	idx := altindex.NewDefault()
	if err := idx.Bulkload(dataset.Pairs(keys)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cache seeded: %d objects, %d workers, θ=%.2f\n", idx.Len(), *workers, *theta)

	zipf := xrand.NewZipf(uint64(len(keys)), *theta)
	var ops, misses atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := xrand.New(uint64(w) + 1)
			nextFresh := keys[len(keys)-1] + uint64(w) + 1
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := 0; i < 512; i++ {
					if r.Intn(100) < 80 { // read a hot object
						k := keys[zipf.Rank(r)]
						if _, ok := idx.Get(k); !ok {
							misses.Add(1)
						}
					} else { // write: refresh or add an object
						if r.Intn(2) == 0 {
							k := keys[zipf.Rank(r)]
							idx.Update(k, r.Next())
						} else {
							_ = idx.Insert(nextFresh, r.Next())
							nextFresh += uint64(*workers)
						}
					}
				}
				ops.Add(512)
			}
		}(w)
	}

	// Live reporting, once a second.
	t0 := time.Now()
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	var last int64
	for elapsed := time.Duration(0); elapsed < *dur; {
		<-ticker.C
		elapsed = time.Since(t0)
		cur := ops.Load()
		st := idx.StatsMap()
		fmt.Printf("  %5.1fs  %6.2f Mops/s  size=%d  learned=%d art=%d retrains=%d\n",
			elapsed.Seconds(), float64(cur-last)/1e6,
			idx.Len(), st["learned_keys"], st["art_keys"], st["retrains"])
		last = cur
	}
	close(stop)
	wg.Wait()

	total := ops.Load()
	fmt.Printf("done: %.1fM ops in %v (%.2f Mops/s), %d misses, %.1f MB resident\n",
		float64(total)/1e6, dur.Round(time.Millisecond),
		float64(total)/dur.Seconds()/1e6, misses.Load(),
		float64(idx.MemoryUsage())/1e6)

	mix := workload.ReadHeavy
	fmt.Printf("(this is the paper's %q mix shape: %d%% reads / %d%% writes)\n",
		mix.Name, mix.Get, mix.Insert)
}
