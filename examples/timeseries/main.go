// timeseries demonstrates the paper's hot-write scenario on a realistic
// workload: telemetry ingestion keyed by (timestamp<<16 | sensor). Inserts
// arrive in almost-consecutive key order — exactly the pattern that crowds
// one GPL model after another and exercises dynamic retraining (§III-F) —
// while dashboard queries run windowed range scans concurrently.
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"altindex"
	"altindex/internal/xrand"
)

const sensorBits = 16

func seriesKey(ts uint64, sensor uint16) uint64 {
	return ts<<sensorBits | uint64(sensor)
}

func main() {
	var (
		sensors  = flag.Int("sensors", 256, "emitting sensors")
		batches  = flag.Int("batches", 2000, "ingest batches (one timestamp each)")
		backfill = flag.Int("backfill", 500, "historic batches bulkloaded up front")
	)
	flag.Parse()

	idx := altindex.NewDefault()
	r := xrand.New(7)

	// Backfill: historical data arrives sorted, so bulkload it.
	var pairs []altindex.KV
	for ts := 0; ts < *backfill; ts++ {
		for s := 0; s < *sensors; s++ {
			pairs = append(pairs, altindex.KV{
				Key:   seriesKey(uint64(ts+1), uint16(s)),
				Value: r.Next() % 1000,
			})
		}
	}
	if err := idx.Bulkload(pairs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backfilled %d points (%d batches x %d sensors)\n",
		idx.Len(), *backfill, *sensors)

	// Live ingest: one goroutine per sensor shard appends consecutive
	// timestamps; a dashboard goroutine scans the trailing window.
	var ingested atomic.Int64
	var wg sync.WaitGroup
	const shards = 8
	perShard := *sensors / shards
	for sh := 0; sh < shards; sh++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			rr := xrand.New(uint64(sh) + 100)
			for ts := *backfill; ts < *backfill+*batches; ts++ {
				for s := sh * perShard; s < (sh+1)*perShard; s++ {
					if err := idx.Insert(seriesKey(uint64(ts+1), uint16(s)), rr.Next()%1000); err != nil {
						log.Fatal(err)
					}
					ingested.Add(1)
				}
			}
		}(sh)
	}

	dashDone := make(chan struct{})
	var windowsScanned atomic.Int64
	go func() {
		defer close(dashDone)
		for {
			ing := ingested.Load()
			if ing >= int64(*batches*perShard*shards) {
				return
			}
			// Scan the most recent 10 timestamps' window.
			latest := uint64(*backfill) + uint64(ing)/uint64(*sensors)
			from := seriesKey(latest-9, 0)
			var count int
			idx.Scan(from, 10**sensors, func(k, v uint64) bool {
				count++
				return true
			})
			windowsScanned.Add(1)
			time.Sleep(2 * time.Millisecond)
		}
	}()

	t0 := time.Now()
	wg.Wait()
	<-dashDone
	dt := time.Since(t0)

	st := idx.StatsMap()
	fmt.Printf("ingested %d points in %v (%.2f Minserts/s) with %d concurrent window scans\n",
		ingested.Load(), dt.Round(time.Millisecond),
		float64(ingested.Load())/dt.Seconds()/1e6, windowsScanned.Load())
	fmt.Printf("retrains=%d models=%d learned=%d art=%d\n",
		st["retrains"], st["models"], st["learned_keys"], st["art_keys"])

	// Verify a windowed aggregation over the final state.
	lastTS := uint64(*backfill + *batches)
	var sum, n uint64
	idx.Scan(seriesKey(lastTS, 0), *sensors, func(k, v uint64) bool {
		sum += v
		n++
		return true
	})
	if n == 0 {
		log.Fatal("final window empty")
	}
	fmt.Printf("final batch: %d sensors, mean reading %.1f\n", n, float64(sum)/float64(n))
}
