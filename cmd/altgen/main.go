// Command altgen generates and inspects the synthetic datasets that stand
// in for the paper's SOSD data (fb, libio, osm, longlat).
//
// Usage:
//
//	altgen -dataset osm -n 1000000 -stats          # CDF/segment statistics
//	altgen -dataset fb -n 1000000 -o fb.bin        # write little-endian u64s
//	altgen -dataset libio -n 100000 -models        # segments per algorithm/eps
package main

import (
	"bufio"
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"altindex/internal/dataset"
	"altindex/internal/gpl"
)

func main() {
	var (
		name   = flag.String("dataset", "osm", "fb|libio|osm|longlat|uniform|sequential")
		n      = flag.Int("n", 1_000_000, "number of keys")
		seed   = flag.Uint64("seed", 1, "generator seed")
		out    = flag.String("o", "", "write keys as little-endian uint64 to this file")
		stats  = flag.Bool("stats", false, "print distribution statistics")
		models = flag.Bool("models", false, "print segment counts per algorithm and error bound")
	)
	flag.Parse()

	keys := dataset.Generate(dataset.Name(*name), *n, *seed)
	fmt.Printf("dataset=%s n=%d seed=%d min=%d max=%d\n",
		*name, len(keys), *seed, keys[0], keys[len(keys)-1])

	if *stats {
		printStats(keys)
	}
	if *models {
		printModels(keys)
	}
	if *out != "" {
		if err := writeKeys(*out, keys); err != nil {
			fmt.Fprintln(os.Stderr, "altgen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d keys to %s\n", len(keys), *out)
	}
}

func printStats(keys []uint64) {
	// Gap distribution percentiles characterise local fitability.
	gaps := make([]uint64, 0, len(keys)-1)
	var sum float64
	for i := 1; i < len(keys); i++ {
		g := keys[i] - keys[i-1]
		gaps = append(gaps, g)
		sum += float64(g)
	}
	sortU64(gaps)
	q := func(p float64) uint64 { return gaps[int(p*float64(len(gaps)-1))] }
	fmt.Printf("gaps: mean=%.1f p50=%d p90=%d p99=%d p999=%d max=%d\n",
		sum/float64(len(gaps)), q(.5), q(.9), q(.99), q(.999), gaps[len(gaps)-1])
}

func printModels(keys []uint64) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "eps\tGPL\tShrinkingCone\tLPA\tGPL ms")
	for _, eps := range []float64{32, 128, float64(len(keys)) / 1000, float64(len(keys)) / 100} {
		t0 := time.Now()
		g := len(gpl.Partition(keys, eps))
		dt := time.Since(t0)
		c := len(gpl.ShrinkingCone(keys, eps))
		l := len(gpl.LPA(keys, eps))
		fmt.Fprintf(tw, "%.0f\t%d\t%d\t%d\t%.1f\n", eps, g, c, l,
			float64(dt.Microseconds())/1e3)
	}
	tw.Flush()
}

func writeKeys(path string, keys []uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	var buf [8]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint64(buf[:], k)
		if _, err := w.Write(buf[:]); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func sortU64(a []uint64) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}
