//go:build failpoint

package main

// The kill -9 crash matrix: an external harness that runs a real altdb
// child process armed (via ALTDB_FAILPOINTS) to SIGKILL itself at one
// exact durability edge — a WAL append, an fsync, a segment rotation, a
// log truncation, a checkpoint file flush/sync/rename, a checkpoint
// publish — while concurrent writers hammer it over TCP. After each
// crash the harness restarts the child over the same data directory and
// audits the recovered state against what the writers observed:
//
//   - no lost acked writes:  a key whose SET was answered "OK" holds an
//     attempt at least as new as the last acked one,
//   - no ghosts:             every recovered value decodes to its owning
//     key and to an attempt that was actually sent,
//   - no double-applies:     the key census matches the audit sweep (and
//     engine-level idempotence is separately tested in internal/memdb).
//
// Values encode provenance as key<<32 | attempt, with each key owned by
// exactly one writer, so every recovered bit is attributable. State
// accumulates across iterations of a site — each recovery chains onto
// the survivors of the previous crash.

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// killSites are the durability edges the matrix kills at. Rotation and
// truncation sites can also fire during the child's own recovery, so some
// iterations kill the child before it ever serves — those still audit.
var killSites = []string{
	"wal/append",
	"wal/sync",
	"wal/rotate",
	"wal/truncate",
	"snapio/flush",
	"snapio/sync",
	"snapio/rename",
	"altdb/checkpoint/publish",
}

const (
	matrixWriters      = 4
	matrixKeysPerOwner = 48
	matrixOpsPerRound  = 300 // per writer, upper bound if the child outlives its failpoint
)

func matrixIters() int {
	if s := os.Getenv("CRASH_MATRIX_ITERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	if testing.Short() {
		return 4
	}
	return 20
}

// writerState is one writer's ground truth, disjoint keys per writer so
// no locking is needed.
type writerState struct {
	acked   map[uint64]uint64 // key -> last acknowledged attempt
	maxSent map[uint64]uint64 // key -> highest attempt ever sent
}

func TestCrashMatrix(t *testing.T) {
	if testing.Short() && os.Getenv("CRASH_MATRIX_ITERS") == "" {
		t.Log("short mode: 4 iterations per site")
	}
	bin := buildAltdb(t)
	iters := matrixIters()
	for _, site := range killSites {
		site := site
		t.Run(strings.ReplaceAll(site, "/", "_"), func(t *testing.T) {
			dir := t.TempDir()
			writers := make([]*writerState, matrixWriters)
			for w := range writers {
				writers[w] = &writerState{
					acked:   map[uint64]uint64{},
					maxSent: map[uint64]uint64{},
				}
			}
			for iter := 0; iter < iters; iter++ {
				runCrashIteration(t, bin, dir, site, iter, writers)
				auditRecovery(t, bin, dir, writers, site, iter)
			}
		})
	}
}

// killSpec arms site to absorb `skip` hits and die on the next one.
func killSpec(site string, skip int) string {
	if skip <= 0 {
		return site + "=kill"
	}
	return fmt.Sprintf("%s=%d*off->kill", site, skip)
}

// hitBudget picks how many site hits to let pass before the kill, varying
// per iteration so the matrix samples different positions of the same
// edge (first batch vs mid-stream vs during rotation-heavy phases).
func hitBudget(site string, iter int) int {
	switch site {
	case "wal/append", "wal/sync":
		return (iter * 17) % 60
	case "wal/rotate":
		// Open itself rotates once per start; small budgets kill during
		// recovery, larger ones mid-stream.
		return iter % 5
	case "wal/truncate", "altdb/checkpoint/publish":
		// One hit per checkpoint; keep the budget tight so it trips.
		return iter % 3
	default: // snapio sites: a few hits per checkpoint (delta + meta).
		return iter % 8
	}
}

// runCrashIteration starts an armed child over dir, hammers it with the
// writers until it dies (or its op budget runs out, in which case it is
// killed externally — an equally valid crash point).
func runCrashIteration(t *testing.T, bin, dir, site string, iter int, writers []*writerState) {
	t.Helper()
	ch, err := startChild(bin, dir, killSpec(site, hitBudget(site, iter)))
	if err != nil {
		// Child died before serving (a kill during its own recovery).
		// Nothing new was acked; the audit pass still runs.
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < matrixWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hammer(ch.addr, writers[w], uint64(w))
		}(w)
	}
	wg.Wait()
	ch.reap(5 * time.Second)
}

// hammer writes this writer's keys round-robin until the child dies or
// the op budget is spent. Every 16th op goes through the MPUT batch path.
func hammer(addr string, ws *writerState, owner uint64) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return // child already dead
	}
	defer conn.Close()
	cl := clientOf(conn)
	base := owner*matrixKeysPerOwner + 1
	for op := 0; op < matrixOpsPerRound; op++ {
		if op%16 == 15 {
			// Batch path: 8 keys in one MPUT, one group-commit record.
			var sb strings.Builder
			sb.WriteString("MPUT")
			keys := make([]uint64, 0, 8)
			for j := 0; j < 8; j++ {
				k := base + uint64((op+j)%matrixKeysPerOwner)
				a := ws.maxSent[k] + 1
				ws.maxSent[k] = a
				keys = append(keys, k)
				fmt.Fprintf(&sb, " %d %d", k, k<<32|a)
			}
			reply, err := cl.cmdE(sb.String())
			if err != nil || !strings.HasPrefix(reply, "OK") {
				return
			}
			for _, k := range keys {
				ws.acked[k] = ws.maxSent[k]
			}
			continue
		}
		k := base + uint64(op%matrixKeysPerOwner)
		a := ws.maxSent[k] + 1
		ws.maxSent[k] = a // recorded before the send: an unacked landing is legal
		reply, err := cl.cmdE(fmt.Sprintf("SET %d %d", k, k<<32|a))
		if err != nil || reply != "OK" {
			return
		}
		ws.acked[k] = a
	}
}

// auditRecovery restarts the child clean (no failpoints, no background
// checkpoints) over the crashed directory and checks every owned key
// against the writers' ground truth.
func auditRecovery(t *testing.T, bin, dir string, writers []*writerState, site string, iter int) {
	t.Helper()
	ch, err := startChild(bin, dir, "", "-checkpoint-interval", "-1s")
	if err != nil {
		t.Fatalf("%s iter %d: recovery failed to serve: %v", site, iter, err)
	}
	defer ch.reapKill()
	conn, err := net.DialTimeout("tcp", ch.addr, 2*time.Second)
	if err != nil {
		t.Fatalf("%s iter %d: audit dial: %v", site, iter, err)
	}
	defer conn.Close()
	cl := clientOf(conn)

	present := 0
	for w, ws := range writers {
		base := uint64(w)*matrixKeysPerOwner + 1
		for k := base; k < base+matrixKeysPerOwner; k++ {
			reply, err := cl.cmdE(fmt.Sprintf("GET %d", k))
			if err != nil {
				t.Fatalf("%s iter %d: audit read: %v", site, iter, err)
			}
			acked, wasAcked := ws.acked[k]
			switch {
			case reply == "NIL":
				if wasAcked {
					t.Fatalf("%s iter %d: LOST ACKED WRITE: key %d acked attempt %d, recovered nothing",
						site, iter, k, acked)
				}
			case strings.HasPrefix(reply, "VALUE "):
				present++
				v, perr := strconv.ParseUint(strings.TrimPrefix(reply, "VALUE "), 10, 64)
				if perr != nil {
					t.Fatalf("%s iter %d: unparseable audit value %q", site, iter, reply)
				}
				gotKey, gotAttempt := v>>32, v&0xffffffff
				if gotKey != k {
					t.Fatalf("%s iter %d: GHOST: key %d holds a value belonging to key %d",
						site, iter, k, gotKey)
				}
				if gotAttempt > ws.maxSent[k] {
					t.Fatalf("%s iter %d: GHOST: key %d recovered attempt %d, only %d were ever sent",
						site, iter, k, gotAttempt, ws.maxSent[k])
				}
				if wasAcked && gotAttempt < acked {
					t.Fatalf("%s iter %d: LOST ACKED WRITE: key %d recovered attempt %d < acked %d",
						site, iter, k, gotAttempt, acked)
				}
			default:
				t.Fatalf("%s iter %d: audit GET %d = %q", site, iter, k, reply)
			}
		}
	}
	// Census check: the index holds exactly the keys the sweep saw — a
	// double-apply that manufactured extra entries would show up here.
	lenReply, err := cl.cmdE("LEN")
	if err != nil {
		t.Fatalf("%s iter %d: LEN: %v", site, iter, err)
	}
	if lenReply != fmt.Sprintf("VALUE %d", present) {
		t.Fatalf("%s iter %d: census mismatch: LEN says %q, audit sweep found %d keys",
			site, iter, lenReply, present)
	}
}

// --- child process management ----------------------------------------------

type childProc struct {
	cmd  *exec.Cmd
	addr string
}

// startChild launches the altdb binary over dir, arming fps (empty = no
// failpoints), and waits for its listen line. An error means the child
// died before serving.
func startChild(bin, dir, fps string, extraArgs ...string) (*childProc, error) {
	args := append([]string{
		"-listen", "127.0.0.1:0",
		"-wal-dir", dir,
		"-wal-sync", "always",
		"-wal-segment-bytes", "2048",
		"-checkpoint-interval", "25ms",
	}, extraArgs...)
	cmd := exec.Command(bin, args...)
	cmd.Env = append(os.Environ(), "ALTDB_FAILPOINTS="+fps)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "altdb listening on "); ok {
				addrCh <- strings.TrimSpace(rest)
			}
		}
		close(addrCh)
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok {
			cmd.Wait()
			return nil, fmt.Errorf("child exited before listening")
		}
		// Keep draining stderr in the scanner goroutine above.
		return &childProc{cmd: cmd, addr: addr}, nil
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("child never printed its listen line")
	}
}

// reap waits for the child to die on its own (the armed kill); if it
// outlives the timeout the harness kills it — still a kill -9 at an
// arbitrary point, which the audit must survive too.
func (c *childProc) reap(timeout time.Duration) {
	done := make(chan struct{})
	go func() {
		c.cmd.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		c.cmd.Process.Kill()
		<-done
	}
}

// reapKill kills the (clean, write-free) audit child immediately.
func (c *childProc) reapKill() {
	c.cmd.Process.Kill()
	c.cmd.Wait()
}

// buildAltdb compiles the server binary once for the whole matrix.
func buildAltdb(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "altdb")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building altdb: %v\n%s", err, out)
	}
	return bin
}
