//go:build failpoint

package main

// Minimal line-protocol client for the crash-matrix harness. The server's
// own test clients live with the engine in internal/server; the matrix
// drives a separately built binary over TCP, so it keeps its own copy.

import (
	"fmt"
	"net"
	"time"
)

// clientOf wraps a raw conn for goroutines that cannot call t.Fatal.
func clientOf(conn net.Conn) *lineClient {
	return &lineClient{conn: conn}
}

type lineClient struct {
	conn net.Conn
}

func (c *lineClient) cmdE(line string) (string, error) {
	if _, err := fmt.Fprintln(c.conn, line); err != nil {
		return "", err
	}
	c.conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	var out []byte
	one := make([]byte, 1)
	for {
		if _, err := c.conn.Read(one); err != nil {
			return "", err
		}
		if one[0] == '\n' {
			return string(out), nil
		}
		out = append(out, one[0])
	}
}
