package main

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"altindex"
	"altindex/internal/failpoint"
	"altindex/internal/wal"
)

// maxBatch caps the number of keys one MGET/MPUT request may carry.
const maxBatch = 4096

// maxLineBytes sizes the per-connection line buffer for the largest legal
// request: an MPUT with maxBatch pairs of 20-digit uint64s plus separators.
// Longer lines are a protocol violation answered with ERR TOOLONG.
const maxLineBytes = 2*maxBatch*21 + 64

// ErrServerClosed is returned by Serve after Shutdown stops the listener.
var ErrServerClosed = errors.New("altdb: server closed")

// fpDispatch fires on every dispatched command; armed with panic it
// simulates a handler crash inside one connection's goroutine, which the
// per-connection recovery must contain without taking down the process.
var fpDispatch = failpoint.New("altdb/dispatch")

// Structured error codes: every ERR reply is "ERR <CODE> <detail...>", so
// clients can switch on the second token instead of parsing prose.
const (
	errUsage    = "USAGE"    // wrong argument shape for the command
	errBadInt   = "BADINT"   // a key/value token is not a uint64
	errTooBig   = "TOOBIG"   // batch exceeds maxBatch
	errTooLong  = "TOOLONG"  // request line exceeds maxLineBytes
	errUnknown  = "UNKNOWN"  // unrecognized command
	errInternal = "INTERNAL" // handler panic or engine failure
)

// Config tunes the server's robustness envelope. Zero values select
// production defaults (see withDefaults).
type Config struct {
	// MaxConns caps concurrently served connections. Excess dials queue
	// in the kernel accept backlog — backpressure, not errors — until a
	// slot frees.
	MaxConns int
	// ReadTimeout bounds the wait for the next request line; an idle or
	// stalled-writer client is disconnected when it expires.
	ReadTimeout time.Duration
	// WriteTimeout bounds flushing one reply; a client that stops reading
	// its replies (stalled reader) is disconnected when it expires.
	WriteTimeout time.Duration
	// DrainTimeout bounds Shutdown's wait for in-flight handlers.
	DrainTimeout time.Duration
	// SnapshotPath, when set, is loaded at startup (if present) and
	// written on graceful shutdown, via the crash-safe snapshot cycle.
	SnapshotPath string
	// Shards range-partitions the keyspace across this many independent
	// index shards behind a learned boundary router. Zero (or one) keeps
	// the single-instance layout. A sharded snapshot restores its saved
	// boundary layout exactly (rebalanced layouts included); an unsharded
	// one is remapped into the requested layout.
	Shards int
	// RebalanceFactor arms the adaptive shard rebalancer (sharded layouts
	// only): when the max/mean routed-op imbalance stays above this factor
	// the hot shard is split at a learned CDF boundary (or cold shards
	// merged) online, without stopping reads. Zero disables. Progress is
	// visible in STATS as rebalance_splits/rebalance_merges/
	// rebalance_moved_keys/rebalance_last_ms.
	RebalanceFactor float64
	// RebalanceInterval overrides the rebalancer's evaluation cadence
	// (0 = 500ms default).
	RebalanceInterval time.Duration
	// WALDir, when set, makes the keyspace durable: every write commits to
	// a write-ahead log before it is acknowledged, incremental checkpoints
	// bound recovery time, and startup recovers base + deltas + log.
	// Mutually exclusive with SnapshotPath (one persistence mode).
	WALDir string
	// WALSync selects the commit point ("always" fsyncs before acking —
	// survives power loss; "interval"/"none" ack after the write reaches
	// the OS — survives process crashes, not power loss).
	WALSync string
	// WALSegmentBytes caps one WAL segment file (0 = 64 MiB default).
	WALSegmentBytes int64
	// CheckpointInterval is the incremental-checkpoint cadence (0 = 15s;
	// negative disables the background loop).
	CheckpointInterval time.Duration
	// CheckpointMaxDeltas is the delta-chain length that triggers
	// compaction into a fresh base (0 = 8).
	CheckpointMaxDeltas int
}

func (c Config) withDefaults() Config {
	if c.MaxConns == 0 {
		c.MaxConns = 256
	}
	if c.ReadTimeout == 0 {
		c.ReadTimeout = 5 * time.Minute
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 10 * time.Second
	}
	return c
}

// Server is the altdb protocol engine: a single keyspace on one ALT-index.
// Exposed as a type (rather than inline in main) so tests can drive it over
// a real connection.
type Server struct {
	cfg Config
	idx altindex.Index
	dur *durableStore // non-nil when cfg.WALDir is set; owns idx's durability
	sem chan struct{} // connection slots; acquired before Accept

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	ln    net.Listener

	done     chan struct{}
	shutOnce sync.Once
	handlers sync.WaitGroup
}

// NewServer builds an empty database with default robustness settings. The
// index trains its learned layer automatically as data arrives.
func NewServer() (*Server, error) {
	return NewServerWith(Config{})
}

// NewServerWith builds a server with cfg. If cfg.SnapshotPath names an
// existing snapshot it is loaded; a corrupt snapshot is a startup error
// (refusing to serve silently-empty data), a missing one starts fresh.
func NewServerWith(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	opts := altindex.Options{
		Shards:            cfg.Shards,
		RebalanceFactor:   cfg.RebalanceFactor,
		RebalanceInterval: cfg.RebalanceInterval,
	}
	idx := altindex.New(opts)
	var dur *durableStore
	switch {
	case cfg.WALDir != "" && cfg.SnapshotPath != "":
		return nil, errors.New("altdb: -wal-dir and -snapshot are mutually exclusive persistence modes")
	case cfg.WALDir != "":
		sync := wal.SyncAlways
		if cfg.WALSync != "" {
			parsed, err := wal.ParseSyncPolicy(cfg.WALSync)
			if err != nil {
				return nil, err
			}
			sync = parsed
		}
		opened, err := openDurable(durableConfig{
			Dir:                cfg.WALDir,
			WAL:                wal.Options{Sync: sync, SegmentBytes: cfg.WALSegmentBytes},
			CheckpointInterval: cfg.CheckpointInterval,
			MaxDeltas:          cfg.CheckpointMaxDeltas,
		}, opts)
		if err != nil {
			return nil, err
		}
		dur = opened
		idx = opened.idx
	case cfg.SnapshotPath != "":
		loaded, err := altindex.Load(cfg.SnapshotPath, opts)
		switch {
		case err == nil:
			idx = loaded
		case errors.Is(err, os.ErrNotExist):
			// First boot: no snapshot yet.
		default:
			return nil, fmt.Errorf("altdb: snapshot %s: %w", cfg.SnapshotPath, err)
		}
	}
	return &Server{
		cfg:   cfg,
		idx:   idx,
		dur:   dur,
		sem:   make(chan struct{}, cfg.MaxConns),
		conns: map[net.Conn]struct{}{},
		done:  make(chan struct{}),
	}, nil
}

// Serve accepts connections until the listener closes or Shutdown is
// called. A connection slot is acquired before Accept, so when MaxConns
// handlers are busy the server stops accepting and excess dials wait in
// the listen backlog instead of spawning unbounded goroutines.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		select {
		case s.sem <- struct{}{}:
		case <-s.done:
			return ErrServerClosed
		}
		conn, err := ln.Accept()
		if err != nil {
			<-s.sem
			select {
			case <-s.done:
				return ErrServerClosed
			default:
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.handlers.Add(1)
		go s.handle(conn)
	}
}

// Shutdown stops accepting, nudges blocked readers off their sockets,
// waits up to DrainTimeout for in-flight handlers, and finally writes the
// shutdown snapshot (if configured) — so every acknowledged write is in
// it. It returns ErrServerClosed-joined errors from a timed-out drain or
// a failed snapshot.
func (s *Server) Shutdown() error {
	s.shutOnce.Do(func() { close(s.done) })
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	// Unblock handlers parked in Scan: an immediate read deadline makes
	// the pending read fail while completed replies stay flushed. Writes
	// keep their own (fresh) deadline, so an in-flight reply finishes.
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.handlers.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-time.After(s.cfg.DrainTimeout):
		err = fmt.Errorf("altdb: %d connections still draining after %v",
			len(s.snapshotConns()), s.cfg.DrainTimeout)
	}
	if s.dur != nil {
		// Final full checkpoint + log close: every acknowledged write is
		// already in the WAL, so even a failed checkpoint loses nothing —
		// but a clean one makes the next start replay-free.
		if derr := s.dur.Close(); derr != nil {
			err = errors.Join(err, fmt.Errorf("altdb: shutdown checkpoint: %w", derr))
		}
	} else if s.cfg.SnapshotPath != "" {
		// Writers are drained; settle any in-flight background retraining
		// so the snapshot scan never has to wait out a freeze window.
		s.idx.Quiesce()
		if serr := altindex.Save(s.idx, s.cfg.SnapshotPath); serr != nil {
			err = errors.Join(err, fmt.Errorf("altdb: shutdown snapshot: %w", serr))
		}
	}
	return err
}

// put, del and mput route mutations through the durable store when one is
// configured (ack after commit) and straight to the index otherwise.
func (s *Server) put(k, v uint64) error {
	if s.dur != nil {
		return s.dur.Set(k, v)
	}
	return s.idx.Insert(k, v)
}

func (s *Server) del(k uint64) (bool, error) {
	if s.dur != nil {
		return s.dur.Del(k)
	}
	return s.idx.Remove(k), nil
}

func (s *Server) mput(pairs []altindex.KV) error {
	if s.dur != nil {
		return s.dur.Mput(pairs)
	}
	return s.idx.InsertBatch(pairs)
}

func (s *Server) snapshotConns() []net.Conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		out = append(out, c)
	}
	return out
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		<-s.sem
		s.handlers.Done()
	}()

	r := bufio.NewScanner(conn)
	r.Buffer(make([]byte, 64*1024), maxLineBytes)
	w := bufio.NewWriter(conn)
	defer w.Flush()

	for {
		select {
		case <-s.done:
			return
		default:
		}
		conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		if !r.Scan() {
			if errors.Is(r.Err(), bufio.ErrTooLong) {
				// The scanner cannot resynchronize mid-line; report and
				// drop the connection.
				fmt.Fprintf(w, "ERR %s line exceeds %d bytes\n", errTooLong, maxLineBytes)
				s.flush(conn, w)
			}
			return
		}
		line := strings.TrimSpace(r.Text())
		if line == "" {
			continue
		}
		if strings.EqualFold(line, "QUIT") {
			fmt.Fprintln(w, "BYE")
			s.flush(conn, w)
			return
		}
		if !s.dispatchRecover(w, line) {
			s.flush(conn, w)
			return
		}
		if !s.flush(conn, w) {
			return
		}
	}
}

// flush writes the buffered replies under the write deadline; false means
// the client is not draining its socket (or is gone) and the connection
// should be dropped.
func (s *Server) flush(conn net.Conn, w *bufio.Writer) bool {
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	return w.Flush() == nil
}

// dispatchRecover contains a panicking handler to its own connection: the
// client gets a structured internal error and is disconnected, while every
// other connection (and the process) keeps serving. ok=false asks the
// caller to close the connection.
func (s *Server) dispatchRecover(w *bufio.Writer, line string) (ok bool) {
	defer func() {
		if p := recover(); p != nil {
			fmt.Fprintf(w, "ERR %s %v\n", errInternal, p)
			ok = false
		}
	}()
	s.dispatch(w, line)
	return true
}

func (s *Server) dispatch(w *bufio.Writer, line string) {
	fpDispatch.Inject()
	fields := strings.Fields(line)
	cmd := strings.ToUpper(fields[0])
	args := fields[1:]
	switch cmd {
	case "SET":
		if len(args) != 2 {
			fmt.Fprintf(w, "ERR %s SET <key> <value>\n", errUsage)
			return
		}
		k, ok := parseU64(w, args[0])
		if !ok {
			return
		}
		v, ok := parseU64(w, args[1])
		if !ok {
			return
		}
		if err := s.put(k, v); err != nil {
			fmt.Fprintf(w, "ERR %s %v\n", errInternal, err)
			return
		}
		fmt.Fprintln(w, "OK")
	case "GET":
		if len(args) != 1 {
			fmt.Fprintf(w, "ERR %s GET <key>\n", errUsage)
			return
		}
		k, ok := parseU64(w, args[0])
		if !ok {
			return
		}
		if v, found := s.idx.Get(k); found {
			fmt.Fprintf(w, "VALUE %d\n", v)
		} else {
			fmt.Fprintln(w, "NIL")
		}
	case "MGET":
		// Batched lookup through the index's native batch path: one
		// model-table load and amortized routing for the whole request.
		if len(args) == 0 {
			fmt.Fprintf(w, "ERR %s MGET <key> [key ...]\n", errUsage)
			return
		}
		if len(args) > maxBatch {
			fmt.Fprintf(w, "ERR %s %d keys, max %d per MGET\n", errTooBig, len(args), maxBatch)
			return
		}
		keys := make([]uint64, len(args))
		for i, a := range args {
			k, ok := parseU64(w, a)
			if !ok {
				return
			}
			keys[i] = k
		}
		vals := make([]uint64, len(keys))
		found := make([]bool, len(keys))
		s.idx.GetBatch(keys, vals, found)
		for i := range keys {
			if found[i] {
				fmt.Fprintf(w, "VALUE %d\n", vals[i])
			} else {
				fmt.Fprintln(w, "NIL")
			}
		}
		fmt.Fprintln(w, "END")
	case "MPUT":
		// Batched upsert via InsertBatch.
		if len(args) == 0 || len(args)%2 != 0 {
			fmt.Fprintf(w, "ERR %s MPUT <key> <value> [key value ...]\n", errUsage)
			return
		}
		if len(args)/2 > maxBatch {
			fmt.Fprintf(w, "ERR %s %d pairs, max %d per MPUT\n", errTooBig, len(args)/2, maxBatch)
			return
		}
		pairs := make([]altindex.KV, len(args)/2)
		for i := 0; i < len(args); i += 2 {
			k, ok := parseU64(w, args[i])
			if !ok {
				return
			}
			v, ok := parseU64(w, args[i+1])
			if !ok {
				return
			}
			pairs[i/2] = altindex.KV{Key: k, Value: v}
		}
		if err := s.mput(pairs); err != nil {
			fmt.Fprintf(w, "ERR %s %v\n", errInternal, err)
			return
		}
		fmt.Fprintf(w, "OK %d\n", len(pairs))
	case "DEL":
		if len(args) != 1 {
			fmt.Fprintf(w, "ERR %s DEL <key>\n", errUsage)
			return
		}
		k, ok := parseU64(w, args[0])
		if !ok {
			return
		}
		found, err := s.del(k)
		if err != nil {
			fmt.Fprintf(w, "ERR %s %v\n", errInternal, err)
			return
		}
		if found {
			fmt.Fprintln(w, "OK")
		} else {
			fmt.Fprintln(w, "NIL")
		}
	case "SCAN":
		if len(args) != 2 {
			fmt.Fprintf(w, "ERR %s SCAN <start> <n>\n", errUsage)
			return
		}
		start, ok := parseU64(w, args[0])
		if !ok {
			return
		}
		n, err := strconv.Atoi(args[1])
		if err != nil || n < 0 {
			fmt.Fprintf(w, "ERR %s %q is not a row count\n", errBadInt, args[1])
			return
		}
		if n > 10000 {
			n = 10000 // per-request cap
		}
		s.idx.Scan(start, n, func(k, v uint64) bool {
			fmt.Fprintf(w, "PAIR %d %d\n", k, v)
			return true
		})
		fmt.Fprintln(w, "END")
	case "LEN":
		fmt.Fprintf(w, "VALUE %d\n", s.idx.Len())
	case "STATS":
		st := s.idx.StatsMap()
		if s.dur != nil {
			for k, v := range s.dur.Stats() {
				st[k] = v
			}
		}
		keys := make([]string, 0, len(st))
		for k := range st {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "STAT %s %d\n", k, st[k])
		}
		fmt.Fprintln(w, "END")
	default:
		fmt.Fprintf(w, "ERR %s command %q\n", errUnknown, cmd)
	}
}

// parseU64 parses one key/value token, emitting a structured BADINT error
// naming the offending token on failure.
func parseU64(w *bufio.Writer, tok string) (uint64, bool) {
	v, err := strconv.ParseUint(tok, 10, 64)
	if err != nil {
		fmt.Fprintf(w, "ERR %s %q is not a uint64\n", errBadInt, tok)
		return 0, false
	}
	return v, true
}
