package main

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"

	"altindex"
)

// maxBatch caps the number of keys one MGET/MPUT request may carry.
const maxBatch = 4096

// Server is the altdb protocol engine: a single keyspace on one ALT-index.
// Exposed as a type (rather than inline in main) so tests can drive it over
// a real connection.
type Server struct {
	idx *altindex.Index
}

// NewServer builds an empty database. The index trains its learned layer
// automatically as data arrives (no bulkload needed).
func NewServer() (*Server, error) {
	return &Server{idx: altindex.NewDefault()}, nil
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewScanner(conn)
	w := bufio.NewWriter(conn)
	defer w.Flush()
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if line == "" {
			continue
		}
		if strings.EqualFold(line, "QUIT") {
			fmt.Fprintln(w, "BYE")
			w.Flush()
			return
		}
		s.dispatch(w, line)
		w.Flush()
	}
}

func (s *Server) dispatch(w *bufio.Writer, line string) {
	fields := strings.Fields(line)
	cmd := strings.ToUpper(fields[0])
	args := fields[1:]
	switch cmd {
	case "SET":
		if len(args) != 2 {
			fmt.Fprintln(w, "ERR usage: SET <key> <value>")
			return
		}
		k, err1 := strconv.ParseUint(args[0], 10, 64)
		v, err2 := strconv.ParseUint(args[1], 10, 64)
		if err1 != nil || err2 != nil {
			fmt.Fprintln(w, "ERR keys and values are uint64")
			return
		}
		if err := s.idx.Insert(k, v); err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		fmt.Fprintln(w, "OK")
	case "GET":
		if len(args) != 1 {
			fmt.Fprintln(w, "ERR usage: GET <key>")
			return
		}
		k, err := strconv.ParseUint(args[0], 10, 64)
		if err != nil {
			fmt.Fprintln(w, "ERR keys are uint64")
			return
		}
		if v, ok := s.idx.Get(k); ok {
			fmt.Fprintf(w, "VALUE %d\n", v)
		} else {
			fmt.Fprintln(w, "NIL")
		}
	case "MGET":
		// Batched lookup through the index's native batch path: one
		// model-table load and amortized routing for the whole request.
		if len(args) == 0 {
			fmt.Fprintln(w, "ERR usage: MGET <key> [key ...]")
			return
		}
		if len(args) > maxBatch {
			fmt.Fprintf(w, "ERR at most %d keys per MGET\n", maxBatch)
			return
		}
		keys := make([]uint64, len(args))
		for i, a := range args {
			k, err := strconv.ParseUint(a, 10, 64)
			if err != nil {
				fmt.Fprintln(w, "ERR keys are uint64")
				return
			}
			keys[i] = k
		}
		vals := make([]uint64, len(keys))
		found := make([]bool, len(keys))
		s.idx.GetBatch(keys, vals, found)
		for i := range keys {
			if found[i] {
				fmt.Fprintf(w, "VALUE %d\n", vals[i])
			} else {
				fmt.Fprintln(w, "NIL")
			}
		}
		fmt.Fprintln(w, "END")
	case "MPUT":
		// Batched upsert via InsertBatch.
		if len(args) == 0 || len(args)%2 != 0 {
			fmt.Fprintln(w, "ERR usage: MPUT <key> <value> [key value ...]")
			return
		}
		if len(args)/2 > maxBatch {
			fmt.Fprintf(w, "ERR at most %d pairs per MPUT\n", maxBatch)
			return
		}
		pairs := make([]altindex.KV, len(args)/2)
		for i := 0; i < len(args); i += 2 {
			k, err1 := strconv.ParseUint(args[i], 10, 64)
			v, err2 := strconv.ParseUint(args[i+1], 10, 64)
			if err1 != nil || err2 != nil {
				fmt.Fprintln(w, "ERR keys and values are uint64")
				return
			}
			pairs[i/2] = altindex.KV{Key: k, Value: v}
		}
		if err := s.idx.InsertBatch(pairs); err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		fmt.Fprintf(w, "OK %d\n", len(pairs))
	case "DEL":
		if len(args) != 1 {
			fmt.Fprintln(w, "ERR usage: DEL <key>")
			return
		}
		k, err := strconv.ParseUint(args[0], 10, 64)
		if err != nil {
			fmt.Fprintln(w, "ERR keys are uint64")
			return
		}
		if s.idx.Remove(k) {
			fmt.Fprintln(w, "OK")
		} else {
			fmt.Fprintln(w, "NIL")
		}
	case "SCAN":
		if len(args) != 2 {
			fmt.Fprintln(w, "ERR usage: SCAN <start> <n>")
			return
		}
		start, err1 := strconv.ParseUint(args[0], 10, 64)
		n, err2 := strconv.Atoi(args[1])
		if err1 != nil || err2 != nil || n < 0 {
			fmt.Fprintln(w, "ERR bad arguments")
			return
		}
		if n > 10000 {
			n = 10000 // per-request cap
		}
		s.idx.Scan(start, n, func(k, v uint64) bool {
			fmt.Fprintf(w, "PAIR %d %d\n", k, v)
			return true
		})
		fmt.Fprintln(w, "END")
	case "LEN":
		fmt.Fprintf(w, "VALUE %d\n", s.idx.Len())
	case "STATS":
		st := s.idx.StatsMap()
		keys := make([]string, 0, len(st))
		for k := range st {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "STAT %s %d\n", k, st[k])
		}
		fmt.Fprintln(w, "END")
	default:
		fmt.Fprintf(w, "ERR unknown command %q\n", cmd)
	}
}
