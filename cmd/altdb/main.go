// Command altdb serves a tiny in-memory key/value database over TCP, with
// ALT-index underneath (via the memdb substrate) — a minimal "memory
// database system" in the paper's sense.
//
// Protocol: one command per line, space-separated, replies are single
// lines ("OK", "VALUE <v>", "NIL", "ROW <cols...>", "ERR <msg>", or
// multi-line scans terminated by "END").
//
//	SET <key> <value>          store/overwrite
//	GET <key>                  read
//	DEL <key>                  delete
//	SCAN <start> <n>           up to n pairs with key >= start
//	LEN                        number of keys
//	STATS                      engine internals
//	QUIT
//
// Start with:  go run ./cmd/altdb -listen 127.0.0.1:7700
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:7700", "address to listen on")
	)
	flag.Parse()

	srv, err := NewServer()
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "altdb listening on %s\n", ln.Addr())
	log.Fatal(srv.Serve(ln))
}
