// Command altdb serves a tiny in-memory key/value database over TCP, with
// ALT-index underneath — a minimal "memory database system" in the paper's
// sense, hardened for unattended operation: per-connection deadlines, a
// connection cap with accept backpressure, per-connection panic containment,
// crash-safe snapshots and graceful drain on SIGINT/SIGTERM.
//
// Protocol: one command per line, space-separated, replies are single
// lines ("OK", "VALUE <v>", "NIL", "ERR <CODE> <detail>", or multi-line
// scans terminated by "END").
//
//	SET <key> <value>          store/overwrite
//	GET <key>                  read
//	DEL <key>                  delete
//	MGET <key> [key ...]       batched read (max 4096 keys)
//	MPUT <k> <v> [k v ...]     batched upsert (max 4096 pairs)
//	SCAN <start> <n>           up to n pairs with key >= start
//	LEN                        number of keys
//	STATS                      engine internals
//	QUIT
//
// Start with:  go run ./cmd/altdb -listen 127.0.0.1:7700 -snapshot db.snap
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	var (
		listen       = flag.String("listen", "127.0.0.1:7700", "address to listen on")
		snapshot     = flag.String("snapshot", "", "snapshot file: loaded at startup, written on graceful shutdown")
		maxConns     = flag.Int("max-conns", 256, "max concurrent connections (excess dials wait in the accept backlog)")
		readTimeout  = flag.Duration("read-timeout", 5*time.Minute, "per-request read deadline")
		writeTimeout = flag.Duration("write-timeout", 30*time.Second, "per-reply write deadline")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain bound")
		shards       = flag.Int("shards", 0, "range-partition the keyspace across this many index shards (0 = single instance)")
	)
	flag.Parse()

	srv, err := NewServerWith(Config{
		MaxConns:     *maxConns,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		DrainTimeout: *drainTimeout,
		SnapshotPath: *snapshot,
		Shards:       *shards,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "altdb listening on %s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	shutdownErr := make(chan error, 1)
	go func() {
		got := <-sig
		fmt.Fprintf(os.Stderr, "altdb: %v: draining and snapshotting\n", got)
		shutdownErr <- srv.Shutdown()
	}()

	if err := srv.Serve(ln); err != ErrServerClosed {
		log.Fatal(err)
	}
	// Serve returned because the signal handler started Shutdown; wait for
	// the drain and the shutdown snapshot to finish.
	if err := <-shutdownErr; err != nil {
		log.Printf("shutdown: %v", err)
	}
}
