// Command altdb serves a tiny in-memory key/value database over TCP, with
// ALT-index underneath — a minimal "memory database system" in the paper's
// sense, hardened for unattended operation: per-connection deadlines, a
// connection cap with accept backpressure, per-connection panic containment,
// graceful drain on SIGINT/SIGTERM, and (with -wal-dir) full durability:
// group-committed write-ahead logging, incremental checkpoints and
// crash recovery that preserves every acknowledged write.
//
// The network hot path is pipelined: replies are flushed once per socket
// wakeup rather than once per command, runs of point commands go through
// the index's batched fast path, and above -coalesce-conns concurrent
// connections the runs of different connections coalesce into shared
// batches (see internal/server and internal/opsched).
//
// Protocol: one command per line, space-separated, replies are single
// lines ("OK", "VALUE <v>", "NIL", "ERR <CODE> <detail>", or multi-line
// scans terminated by "END").
//
//	SET <key> <value>          store/overwrite
//	GET <key>                  read
//	DEL <key>                  delete
//	MGET <key> [key ...]       batched read (max 4096 keys)
//	MPUT <k> <v> [k v ...]     batched upsert (max 4096 pairs)
//	SCAN <start> <n>           up to n pairs with key >= start
//	LEN                        number of keys
//	STATS                      engine internals
//	QUIT
//
// Start with:  go run ./cmd/altdb -listen 127.0.0.1:7700 -wal-dir ./data
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"altindex/internal/failpoint"
	"altindex/internal/server"
)

func main() {
	var (
		listen        = flag.String("listen", "127.0.0.1:7700", "address to listen on")
		snapshot      = flag.String("snapshot", "", "snapshot file: loaded at startup, written on graceful shutdown (legacy mode; prefer -wal-dir)")
		maxConns      = flag.Int("max-conns", 256, "max concurrent connections (excess dials wait in the accept backlog)")
		readTimeout   = flag.Duration("read-timeout", 5*time.Minute, "per-request read deadline")
		writeTimeout  = flag.Duration("write-timeout", 30*time.Second, "per-reply write deadline")
		drainTimeout  = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain bound")
		legacyLoop    = flag.Bool("legacy-loop", false, "serve with the pre-pipelining connection loop (one flush per command, no batching) — benchmark baseline / fallback")
		coalesceConns = flag.Int("coalesce-conns", 0, "connection count at which cross-connection op coalescing engages (0 = 8, negative disables)")
		shards        = flag.Int("shards", 0, "range-partition the keyspace across this many index shards (0 = single instance)")
		rebFactor     = flag.Float64("rebalance-factor", 0, "adaptive shard rebalancing: split/merge online when max/mean routed-op imbalance exceeds this factor (0 disables; needs -shards > 1)")
		rebInterval   = flag.Duration("rebalance-interval", 0, "rebalancer evaluation cadence (0 = 500ms)")
		walDir        = flag.String("wal-dir", "", "durability directory: write-ahead log + incremental checkpoints; writes ack only after commit")
		walSync       = flag.String("wal-sync", "always", "WAL commit point: always (fsync per group commit), interval, none")
		walSegBytes   = flag.Int64("wal-segment-bytes", 0, "WAL segment size cap in bytes (0 = 64 MiB)")
		ckptInterval  = flag.Duration("checkpoint-interval", 0, "incremental checkpoint cadence (0 = 15s, negative disables)")
	)
	flag.Parse()

	// ALTDB_FAILPOINTS arms fault-injection sites before anything touches
	// disk: "site=spec[;site=spec...]", e.g. "wal/sync=2*off->kill". This is
	// how the crash-matrix harness makes a child die at an exact durability
	// edge.
	if env := os.Getenv("ALTDB_FAILPOINTS"); env != "" {
		for _, part := range strings.Split(env, ";") {
			site, spec, ok := strings.Cut(strings.TrimSpace(part), "=")
			if !ok {
				log.Fatalf("event=bad_failpoint_env entry=%q", part)
			}
			if err := failpoint.Enable(site, spec); err != nil {
				log.Fatalf("event=bad_failpoint_env entry=%q error=%q", part, err.Error())
			}
		}
	}

	srv, err := server.NewServerWith(server.Config{
		MaxConns:           *maxConns,
		ReadTimeout:        *readTimeout,
		WriteTimeout:       *writeTimeout,
		DrainTimeout:       *drainTimeout,
		LegacyLoop:         *legacyLoop,
		CoalesceConns:      *coalesceConns,
		SnapshotPath:       *snapshot,
		Shards:             *shards,
		RebalanceFactor:    *rebFactor,
		RebalanceInterval:  *rebInterval,
		WALDir:             *walDir,
		WALSync:            *walSync,
		WALSegmentBytes:    *walSegBytes,
		CheckpointInterval: *ckptInterval,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "altdb listening on %s\n", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	shutdownErr := make(chan error, 1)
	go func() {
		got := <-sig
		fmt.Fprintf(os.Stderr, "altdb: %v: draining and snapshotting\n", got)
		shutdownErr <- srv.Shutdown()
	}()

	if err := srv.Serve(ln); err != server.ErrServerClosed {
		log.Fatal(err)
	}
	// Serve returned because the signal handler started Shutdown; wait for
	// the drain and the final checkpoint/snapshot to finish. A failed
	// shutdown persistence pass means the on-disk state may lag the served
	// state — report it structured and exit non-zero so supervisors and
	// operators see it, instead of a silent success.
	if err := <-shutdownErr; err != nil {
		log.Printf("event=shutdown_failed error=%q", err.Error())
		os.Exit(1)
	}
}
