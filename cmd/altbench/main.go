// Command altbench regenerates the tables and figures of the ALT-index
// paper's evaluation (§IV) at a configurable scale.
//
// Usage:
//
//	altbench -list
//	altbench -exp table1
//	altbench -exp fig7c -keys 5000000 -threads 32 -ops 4000000
//	altbench -exp all
//	altbench -exp fig7           # expands to fig7a..fig7e
//
// The paper runs 200M keys on 36 physical cores; the defaults here are
// laptop-scale (2M keys). Absolute numbers differ, the comparative shape is
// what the experiments reproduce (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"altindex/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (see -list), 'fig7', or 'all'")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		keys    = flag.Int("keys", 2_000_000, "dataset size")
		threads = flag.Int("threads", 0, "worker goroutines (default min(GOMAXPROCS,32))")
		ops     = flag.Int("ops", 1_000_000, "operations per run")
		seed    = flag.Uint64("seed", 1, "dataset/workload seed")
		batch   = flag.String("batch", "", "comma-separated batch sizes for the 'batch' experiment (default 1,8,64,256)")
	)
	flag.Parse()

	batchSizes, err := parseBatchSizes(*batch)
	if err != nil {
		fmt.Fprintf(os.Stderr, "altbench: -batch: %v\n", err)
		os.Exit(2)
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "altbench: -exp required (or -list)")
		flag.Usage()
		os.Exit(2)
	}

	p := bench.Params{Keys: *keys, Threads: *threads, Ops: *ops, Seed: *seed,
		BatchSizes: batchSizes, Out: os.Stdout}
	ids := expand(*exp)
	if len(ids) == 0 {
		fmt.Fprintf(os.Stderr, "altbench: unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
	for _, id := range ids {
		e, ok := bench.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "altbench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		e.Run(p)
	}
}

// parseBatchSizes parses the -batch flag ("1,8,64,256"); empty means the
// experiment default.
func parseBatchSizes(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad batch size %q", part)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}

// expand resolves shorthand ids: "all" runs everything, "fig7"/"fig8"
// expand to their sub-figures.
func expand(id string) []string {
	switch id {
	case "all":
		var ids []string
		for _, e := range bench.Experiments() {
			ids = append(ids, e.ID)
		}
		return ids
	case "fig7", "fig8":
		var ids []string
		for _, e := range bench.Experiments() {
			if strings.HasPrefix(e.ID, id) {
				ids = append(ids, e.ID)
			}
		}
		return ids
	}
	if _, ok := bench.ByID(id); ok {
		return []string{id}
	}
	return nil
}
