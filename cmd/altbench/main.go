// Command altbench regenerates the tables and figures of the ALT-index
// paper's evaluation (§IV) at a configurable scale.
//
// Usage:
//
//	altbench -list
//	altbench -exp table1
//	altbench -exp fig7c -keys 5000000 -threads 32 -ops 4000000
//	altbench -exp all
//	altbench -exp fig7           # expands to fig7a..fig7e
//
// The paper runs 200M keys on 36 physical cores; the defaults here are
// laptop-scale (2M keys). Absolute numbers differ, the comparative shape is
// what the experiments reproduce (see EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"strings"

	"altindex/internal/bench"
)

// largeTierKeys is the -tier large default dataset size; ≥50M stays an
// explicit -keys opt-in so nobody triggers an hour-long run by accident.
const largeTierKeys = 20_000_000

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (see -list), 'fig7', or 'all'")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		keys    = flag.Int("keys", 2_000_000, "dataset size")
		threads = flag.Int("threads", 0, "worker goroutines (default min(GOMAXPROCS,32))")
		ops     = flag.Int("ops", 1_000_000, "operations per run")
		dur     = flag.Duration("duration", 0, "time-bound each run instead of -ops (e.g. 2s); achieved ops are reported")
		seed    = flag.Uint64("seed", 1, "dataset/workload seed")
		batch   = flag.String("batch", "", "comma-separated batch sizes for the 'batch' experiment (default 1,8,64,256)")
		shards  = flag.Int("shards", 0, "extra shard count for the 'shard-scaling' sweep (0 = default sweep)")
		tier    = flag.String("tier", "", "scale tier: 'large' defaults -keys to 20M and -exp to large-scale (pass -keys 50000000 or more to opt higher)")

		netRun   = flag.Bool("net", false, "shorthand for -exp net-path: drive the served TCP hot path (pipelined loop + coalescing vs legacy baseline)")
		netConns = flag.Int("net-conns", 0, "net-path: connections for the depth sweep (0 = 8, where the coalescing gate engages)")
		netDepth = flag.Int("net-depth", 0, "net-path: pipeline depth for the connection sweep (0 = 16)")

		gogc     = flag.Int("gogc", 0, "debug.SetGCPercent value for the whole process (0 = leave GOGC/runtime default)")
		memlimit = flag.Int64("memlimit", 0, "debug.SetMemoryLimit bytes (0 = leave GOMEMLIMIT/runtime default)")

		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		mutexprofile = flag.String("mutexprofile", "", "write a mutex-contention profile to this file on exit")
		jsonOut      = flag.String("json", "", "write every run's Result as JSON to this file (durations in ns)")
	)
	flag.Parse()

	batchSizes, err := parseBatchSizes(*batch)
	if err != nil {
		fmt.Fprintf(os.Stderr, "altbench: -batch: %v\n", err)
		os.Exit(2)
	}

	switch *tier {
	case "":
	case "large":
		keysSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "keys" {
				keysSet = true
			}
		})
		if !keysSet {
			*keys = largeTierKeys
		}
		if *exp == "" {
			*exp = "large-scale"
		}
	default:
		fmt.Fprintf(os.Stderr, "altbench: unknown -tier %q (only 'large')\n", *tier)
		os.Exit(2)
	}

	// GC knobs apply to the whole process so the JSON metadata below
	// describes exactly what every recorded run executed under.
	if *gogc != 0 {
		debug.SetGCPercent(*gogc)
	}
	if *memlimit > 0 {
		debug.SetMemoryLimit(*memlimit)
	}

	if *netRun && *exp == "" {
		*exp = "net-path"
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "altbench: -exp required (or -list)")
		flag.Usage()
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "altbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "altbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *mutexprofile != "" {
		// 1-in-5 sampling keeps the overhead away from the measured tails.
		runtime.SetMutexProfileFraction(5)
		defer writeProfile("mutex", *mutexprofile)
	}
	if *memprofile != "" {
		defer func() {
			runtime.GC()
			writeProfile("heap", *memprofile)
		}()
	}

	p := bench.Params{Keys: *keys, Threads: *threads, Ops: *ops, Seed: *seed,
		BatchSizes: batchSizes, Shards: *shards, Duration: *dur,
		NetConns: *netConns, NetDepth: *netDepth, Out: os.Stdout}
	ids := expand(*exp)
	if len(ids) == 0 {
		fmt.Fprintf(os.Stderr, "altbench: unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}

	// Every runRow-backed result is recorded under its experiment id; -json
	// dumps the lot machine-readably, with the scale parameters alongside.
	// Sharded runs carry the skew monitor in Result.Stats: per-shard routed
	// op counts (shard_ops_NN), shard_ops_max/mean, and the max/mean
	// imbalance ratio scaled by 100 (shard_imbalance_x100).
	type jsonRow struct {
		Experiment string
		bench.Result
	}
	var rows []jsonRow
	curID := ""
	if *jsonOut != "" {
		p.Record = func(r bench.Result) {
			rows = append(rows, jsonRow{Experiment: curID, Result: r})
		}
	}

	for _, id := range ids {
		e, ok := bench.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "altbench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		curID = id
		e.Run(p)
	}

	if *jsonOut != "" {
		// Reproducibility metadata: the GC configuration and host shape a
		// perf-trajectory artifact ran under. The GOGC/GOMEMLIMIT values
		// are the effective runtime settings (flag, env or default), read
		// back from the runtime itself.
		curGC := debug.SetGCPercent(100)
		debug.SetGCPercent(curGC)
		doc := struct {
			Keys, Threads, Ops, Shards int
			Seed                       uint64
			Tier                       string
			GOGC                       int
			GOMEMLIMIT                 int64
			NumCPU                     int
			GOMAXPROCS                 int
			GoVersion                  string
			Runs                       []jsonRow
		}{*keys, *threads, *ops, *shards, *seed, *tier,
			curGC, debug.SetMemoryLimit(-1), runtime.NumCPU(),
			runtime.GOMAXPROCS(0), runtime.Version(), rows}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "altbench: -json: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "altbench: -json: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeProfile dumps a named runtime profile, warning instead of failing —
// a missing profile must not discard an hour of benchmark output.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "altbench: profile %s: %v\n", name, err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "altbench: profile %s: %v\n", name, err)
	}
}

// parseBatchSizes parses the -batch flag ("1,8,64,256"); empty means the
// experiment default.
func parseBatchSizes(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad batch size %q", part)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}

// expand resolves shorthand ids: "all" runs everything, "fig7"/"fig8"
// expand to their sub-figures.
func expand(id string) []string {
	switch id {
	case "all":
		var ids []string
		for _, e := range bench.Experiments() {
			ids = append(ids, e.ID)
		}
		return ids
	case "fig7", "fig8":
		var ids []string
		for _, e := range bench.Experiments() {
			if strings.HasPrefix(e.ID, id) {
				ids = append(ids, e.ID)
			}
		}
		return ids
	}
	if _, ok := bench.ByID(id); ok {
		return []string{id}
	}
	return nil
}
