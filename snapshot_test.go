package altindex

import (
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"altindex/internal/failpoint"
	"altindex/internal/snapio"
)

func TestIndexSnapshotRoundTrip(t *testing.T) {
	idx := NewDefault()
	var pairs []KV
	for k := uint64(1); k <= 20000; k++ {
		pairs = append(pairs, KV{Key: k * 7, Value: k * 11})
	}
	if err := idx.Bulkload(pairs); err != nil {
		t.Fatal(err)
	}
	for k := uint64(30000); k < 30500; k++ {
		if err := idx.Insert(k*9, k); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "idx.snap")
	if err := Save(idx, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != idx.Len() {
		t.Fatalf("Len = %d, want %d", loaded.Len(), idx.Len())
	}
	for _, kv := range pairs {
		if v, ok := loaded.Get(kv.Key); !ok || v != kv.Value {
			t.Fatalf("Get(%d) = (%d,%v)", kv.Key, v, ok)
		}
	}
	for k := uint64(30000); k < 30500; k++ {
		if v, ok := loaded.Get(k * 9); !ok || v != k {
			t.Fatalf("inserted key %d = (%d,%v)", k*9, v, ok)
		}
	}
}

// TestSnapshotShardRoundTrip covers the sharded (v2) snapshot format:
// saving a sharded index, restoring it into the same sharded layout with
// the exact stored boundaries, and loading it into layouts that disagree
// with the file — unsharded and differently-sharded configs — which must
// remap the data cleanly rather than fail or corrupt.
func TestSnapshotShardRoundTrip(t *testing.T) {
	idx := New(Options{Shards: 4})
	defer idx.Close()
	var pairs []KV
	for k := uint64(1); k <= 20000; k++ {
		pairs = append(pairs, KV{Key: k * 7, Value: k * 11})
	}
	if err := idx.Bulkload(pairs); err != nil {
		t.Fatal(err)
	}
	for k := uint64(30000); k < 30500; k++ {
		if err := idx.Insert(k*9, k); err != nil {
			t.Fatal(err)
		}
	}
	idx.Quiesce()
	wantBounds := idx.(interface{ Bounds() []uint64 }).Bounds()
	path := filepath.Join(t.TempDir(), "sharded.snap")
	if err := Save(idx, path); err != nil {
		t.Fatal(err)
	}

	verify := func(t *testing.T, loaded Index) {
		t.Helper()
		if loaded.Len() != idx.Len() {
			t.Fatalf("Len = %d, want %d", loaded.Len(), idx.Len())
		}
		for i := 0; i < len(pairs); i += 97 {
			kv := pairs[i]
			if v, ok := loaded.Get(kv.Key); !ok || v != kv.Value {
				t.Fatalf("Get(%d) = (%d,%v)", kv.Key, v, ok)
			}
		}
		for k := uint64(30000); k < 30500; k++ {
			if v, ok := loaded.Get(k * 9); !ok || v != k {
				t.Fatalf("inserted key %d = (%d,%v)", k*9, v, ok)
			}
		}
		// Scans must stitch identically regardless of layout.
		n := 0
		var prev uint64
		loaded.Scan(0, idx.Len()+1, func(k, v uint64) bool {
			if n > 0 && k <= prev {
				t.Fatalf("scan order violation: %d after %d", k, prev)
			}
			prev = k
			n++
			return true
		})
		if n != idx.Len() {
			t.Fatalf("scan visited %d keys, want %d", n, idx.Len())
		}
	}

	t.Run("same-layout", func(t *testing.T) {
		loaded, err := Load(path, Options{Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		defer loaded.Close()
		gotBounds := loaded.(interface{ Bounds() []uint64 }).Bounds()
		if len(gotBounds) != len(wantBounds) {
			t.Fatalf("restored %d bounds, want %d", len(gotBounds), len(wantBounds))
		}
		for i := range wantBounds {
			if gotBounds[i] != wantBounds[i] {
				t.Fatalf("bound %d = %d, want %d (layout not reproduced)", i, gotBounds[i], wantBounds[i])
			}
		}
		verify(t, loaded)
	})
	t.Run("into-unsharded", func(t *testing.T) {
		loaded, err := Load(path, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer loaded.Close()
		if _, ok := loaded.(interface{ Bounds() []uint64 }); ok {
			t.Fatal("unsharded config produced a sharded index")
		}
		verify(t, loaded)
	})
	t.Run("into-different-count", func(t *testing.T) {
		// The saved layout wins over opts.Shards: after adaptive
		// rebalancing the on-disk shard count legitimately drifts from the
		// configured one, and recovery must reproduce the layout the index
		// converged to rather than re-quantile it.
		loaded, err := Load(path, Options{Shards: 7})
		if err != nil {
			t.Fatal(err)
		}
		defer loaded.Close()
		if got := loaded.StatsMap()["shards"]; got != 4 {
			t.Fatalf("shards = %d, want the saved 4 (stored layout must win)", got)
		}
		gotBounds := loaded.(interface{ Bounds() []uint64 }).Bounds()
		for i := range wantBounds {
			if gotBounds[i] != wantBounds[i] {
				t.Fatalf("bound %d = %d, want %d", i, gotBounds[i], wantBounds[i])
			}
		}
		verify(t, loaded)
	})
	t.Run("rebalanced-bounds", func(t *testing.T) {
		// Migrate the live index to a deliberately non-quantile layout (the
		// state an adaptive split/merge history leaves behind) and check
		// the snapshot round-trips those exact boundaries.
		reb := []uint64{7 * 1000, 7 * 1100, 7 * 9000}
		if err := idx.(interface{ SetBounds([]uint64) error }).SetBounds(reb); err != nil {
			t.Fatal(err)
		}
		p4 := filepath.Join(t.TempDir(), "rebalanced.snap")
		if err := Save(idx, p4); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(p4, Options{Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		defer loaded.Close()
		gotBounds := loaded.(interface{ Bounds() []uint64 }).Bounds()
		if len(gotBounds) != len(reb) {
			t.Fatalf("restored %d bounds, want %d", len(gotBounds), len(reb))
		}
		for i := range reb {
			if gotBounds[i] != reb[i] {
				t.Fatalf("bound %d = %d, want %d (rebalanced layout not reproduced)", i, gotBounds[i], reb[i])
			}
		}
		verify(t, loaded)
	})
	t.Run("unsharded-file-into-sharded", func(t *testing.T) {
		flat := NewDefault()
		defer flat.Close()
		if err := flat.Bulkload(pairs); err != nil {
			t.Fatal(err)
		}
		p2 := filepath.Join(t.TempDir(), "flat.snap")
		if err := Save(flat, p2); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(p2, Options{Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		defer loaded.Close()
		if got := loaded.StatsMap()["shards"]; got != 4 {
			t.Fatalf("shards = %d, want 4", got)
		}
		if loaded.Len() != len(pairs) {
			t.Fatalf("Len = %d, want %d", loaded.Len(), len(pairs))
		}
	})
	t.Run("corrupt-bounds-rejected", func(t *testing.T) {
		// A well-framed (valid CRC) v2 file whose boundaries decrease must
		// be rejected by the semantic validation, not just the checksum.
		p3 := filepath.Join(t.TempDir(), "badbounds.snap")
		err := snapio.WriteFile(p3, func(w io.Writer) error {
			if _, err := w.Write([]byte("ALTIX002")); err != nil {
				return err
			}
			for _, v := range []any{uint32(4), []uint64{30, 20, 10}, uint64(0)} {
				if err := binary.Write(w, binary.LittleEndian, v); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Load(p3, Options{Shards: 4}); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("decreasing bounds: %v, want ErrBadSnapshot", err)
		}
	})
}

func TestIndexSnapshotEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.snap")
	if err := Save(NewDefault(), path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path, Options{})
	if err != nil || loaded.Len() != 0 {
		t.Fatalf("empty load: %v, len %d", err, loaded.Len())
	}
}

func TestIndexSnapshotCrashSafety(t *testing.T) {
	for _, site := range []string{"snapio/flush", "snapio/sync", "snapio/rename"} {
		defer failpoint.DisableAll()
		path := filepath.Join(t.TempDir(), "idx.snap")
		idx := NewDefault()
		for k := uint64(1); k <= 5000; k++ {
			if err := idx.Insert(k, k*2); err != nil {
				t.Fatal(err)
			}
		}
		if err := Save(idx, path); err != nil {
			t.Fatal(err)
		}
		if err := idx.Insert(999999, 1); err != nil {
			t.Fatal(err)
		}
		if err := failpoint.Enable(site, "error(kill -9)"); err != nil {
			t.Fatal(err)
		}
		if err := Save(idx, path); !errors.Is(err, failpoint.ErrInjected) {
			t.Fatalf("%s: injected crash not surfaced: %v", site, err)
		}
		failpoint.Disable(site)
		prev, err := Load(path, Options{})
		if err != nil {
			t.Fatalf("%s: previous checkpoint unloadable: %v", site, err)
		}
		if prev.Len() != 5000 {
			t.Fatalf("%s: previous checkpoint len %d", site, prev.Len())
		}
		if _, ok := prev.Get(999999); ok {
			t.Fatalf("%s: crashed save leaked post-checkpoint data", site)
		}
	}
}

func TestIndexSnapshotCorruptRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.snap")
	idx := NewDefault()
	for k := uint64(1); k <= 1000; k++ {
		if err := idx.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if err := Save(idx, path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, Options{}); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("corrupt snapshot: %v, want ErrBadSnapshot", err)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing"), Options{}); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing snapshot: %v", err)
	}
}
