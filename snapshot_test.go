package altindex

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"altindex/internal/failpoint"
)

func TestIndexSnapshotRoundTrip(t *testing.T) {
	idx := NewDefault()
	var pairs []KV
	for k := uint64(1); k <= 20000; k++ {
		pairs = append(pairs, KV{Key: k * 7, Value: k * 11})
	}
	if err := idx.Bulkload(pairs); err != nil {
		t.Fatal(err)
	}
	for k := uint64(30000); k < 30500; k++ {
		if err := idx.Insert(k*9, k); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "idx.snap")
	if err := Save(idx, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != idx.Len() {
		t.Fatalf("Len = %d, want %d", loaded.Len(), idx.Len())
	}
	for _, kv := range pairs {
		if v, ok := loaded.Get(kv.Key); !ok || v != kv.Value {
			t.Fatalf("Get(%d) = (%d,%v)", kv.Key, v, ok)
		}
	}
	for k := uint64(30000); k < 30500; k++ {
		if v, ok := loaded.Get(k * 9); !ok || v != k {
			t.Fatalf("inserted key %d = (%d,%v)", k*9, v, ok)
		}
	}
}

func TestIndexSnapshotEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.snap")
	if err := Save(NewDefault(), path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path, Options{})
	if err != nil || loaded.Len() != 0 {
		t.Fatalf("empty load: %v, len %d", err, loaded.Len())
	}
}

func TestIndexSnapshotCrashSafety(t *testing.T) {
	for _, site := range []string{"snapio/flush", "snapio/sync", "snapio/rename"} {
		defer failpoint.DisableAll()
		path := filepath.Join(t.TempDir(), "idx.snap")
		idx := NewDefault()
		for k := uint64(1); k <= 5000; k++ {
			if err := idx.Insert(k, k*2); err != nil {
				t.Fatal(err)
			}
		}
		if err := Save(idx, path); err != nil {
			t.Fatal(err)
		}
		if err := idx.Insert(999999, 1); err != nil {
			t.Fatal(err)
		}
		if err := failpoint.Enable(site, "error(kill -9)"); err != nil {
			t.Fatal(err)
		}
		if err := Save(idx, path); !errors.Is(err, failpoint.ErrInjected) {
			t.Fatalf("%s: injected crash not surfaced: %v", site, err)
		}
		failpoint.Disable(site)
		prev, err := Load(path, Options{})
		if err != nil {
			t.Fatalf("%s: previous checkpoint unloadable: %v", site, err)
		}
		if prev.Len() != 5000 {
			t.Fatalf("%s: previous checkpoint len %d", site, prev.Len())
		}
		if _, ok := prev.Get(999999); ok {
			t.Fatalf("%s: crashed save leaked post-checkpoint data", site)
		}
	}
}

func TestIndexSnapshotCorruptRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.snap")
	idx := NewDefault()
	for k := uint64(1); k <= 1000; k++ {
		if err := idx.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if err := Save(idx, path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, Options{}); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("corrupt snapshot: %v, want ErrBadSnapshot", err)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing"), Options{}); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing snapshot: %v", err)
	}
}
